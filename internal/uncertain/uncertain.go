// Package uncertain implements the §7 extension to uncertain contact
// networks: a contact transmits an item with probability p, a contact path
// succeeds with the product of its contacts' probabilities, and a query
// asks whether the destination is reachable with probability at least pT.
//
// Two engines answer the maximum-path-probability question and are
// cross-validated against each other:
//
//   - Sweep: a forward dynamic program over the query interval. At every
//     instant the active contacts relax the per-object best probability to
//     a fixpoint, so same-instant contact chains (a→b→c at one tick) are
//     honoured exactly as in the deterministic engines.
//   - Dijkstra: the shortest-path formulation the paper prescribes for
//     U-ReachGraph ("we adopt graph shortest path algorithms"), run over
//     the implicit time-expanded network with edge weights −log p. Holding
//     an item costs nothing; transfers cost −log p ≥ 0, so Dijkstra's
//     invariant applies and the search stops the moment the destination is
//     settled.
package uncertain

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"streach/internal/contact"
	"streach/internal/trajectory"
)

// Contact is an uncertain contact: the pair may transmit an item at any
// instant of Validity, each attempt succeeding with probability Prob.
// Weight and Dur carry the deterministic network's per-contact sidecar
// through the lift, so filtered probabilistic queries (min-duration,
// max-weight) evaluate against the same record the deterministic engines
// see.
type Contact struct {
	A, B     trajectory.ObjectID
	Validity contact.Interval
	Prob     float64
	Weight   float32
	Dur      int32
}

// Deterministic returns the contact record without its probability — the
// value per-contact predicates evaluate against.
func (c Contact) Deterministic() contact.Contact {
	return contact.Contact{A: c.A, B: c.B, Validity: c.Validity, Weight: c.Weight, Dur: c.Dur}
}

// Network is an uncertain contact network.
type Network struct {
	NumObjects int
	NumTicks   int
	Contacts   []Contact
}

// FromNetwork lifts a deterministic contact network into an uncertain one,
// assigning each contact the probability prob(c). Probabilities outside
// (0, 1] are clamped. The comparison is written so NaN drops the contact:
// `p <= 0` is false for NaN, which used to let NaN probabilities into the
// network, where they silently poison every downstream max/product DP
// (NaN fails both sides of a comparison, so relaxations never fire and
// never fail either).
func FromNetwork(net *contact.Network, prob func(contact.Contact) float64) *Network {
	un := &Network{NumObjects: net.NumObjects, NumTicks: net.NumTicks}
	for _, c := range net.Contacts {
		p := prob(c)
		if !(p > 0) { // rejects NaN as well as p ≤ 0
			continue
		}
		if p > 1 {
			p = 1
		}
		un.Contacts = append(un.Contacts, Contact{A: c.A, B: c.B, Validity: c.Validity,
			Prob: p, Weight: c.Weight, Dur: c.Dur})
	}
	return un
}

// Validate checks structural sanity.
func (n *Network) Validate() error {
	for _, c := range n.Contacts {
		if c.A < 0 || int(c.A) >= n.NumObjects || c.B < 0 || int(c.B) >= n.NumObjects {
			return fmt.Errorf("uncertain: contact %v outside object domain", c)
		}
		if c.Validity.Len() == 0 {
			return fmt.Errorf("uncertain: contact %v has empty validity", c)
		}
		// Negated-range form so NaN (which fails every comparison) is
		// rejected along with out-of-range values.
		if !(c.Prob > 0 && c.Prob <= 1) {
			return fmt.Errorf("uncertain: contact %v has probability %v", c, c.Prob)
		}
	}
	return nil
}

// Engine evaluates maximum-probability reachability over a network.
type Engine struct {
	net      *Network
	byTick   [][]int32 // contact indices active per tick (sweep DP)
	byObject [][]int32 // contact indices touching each object (Dijkstra)
}

// NewEngine indexes the network by tick and by object.
func NewEngine(n *Network) (*Engine, error) {
	if n.NumObjects <= 0 || n.NumTicks <= 0 {
		return nil, errors.New("uncertain: empty network")
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		net:      n,
		byTick:   make([][]int32, n.NumTicks),
		byObject: make([][]int32, n.NumObjects),
	}
	for i, c := range n.Contacts {
		lo, hi := c.Validity.Lo, c.Validity.Hi
		if lo < 0 {
			lo = 0
		}
		if int(hi) >= n.NumTicks {
			hi = trajectory.Tick(n.NumTicks - 1)
		}
		for t := lo; t <= hi; t++ {
			e.byTick[t] = append(e.byTick[t], int32(i))
		}
		e.byObject[c.A] = append(e.byObject[c.A], int32(i))
		e.byObject[c.B] = append(e.byObject[c.B], int32(i))
	}
	return e, nil
}

// clamp restricts iv to the network's time domain.
func (e *Engine) clamp(iv contact.Interval) contact.Interval {
	return iv.Intersect(contact.Interval{Lo: 0, Hi: trajectory.Tick(e.net.NumTicks - 1)})
}

func (e *Engine) checkObjects(objs ...trajectory.ObjectID) error {
	for _, o := range objs {
		if o < 0 || int(o) >= e.net.NumObjects {
			return fmt.Errorf("uncertain: object %d outside [0, %d)", o, e.net.NumObjects)
		}
	}
	return nil
}

// BestProb returns the maximum probability with which an item initiated by
// src at iv.Lo is held by dst by iv.Hi, via the forward sweep DP.
func (e *Engine) BestProb(src, dst trajectory.ObjectID, iv contact.Interval) (float64, error) {
	best, err := e.BestProbAll(src, iv)
	if err != nil {
		return 0, err
	}
	return best[dst], nil
}

// BestProbAll returns the per-object maximum receipt probabilities, the
// batch primitive for probabilistic epidemic analysis.
func (e *Engine) BestProbAll(src trajectory.ObjectID, iv contact.Interval) ([]float64, error) {
	if err := e.checkObjects(src); err != nil {
		return nil, err
	}
	best := make([]float64, e.net.NumObjects)
	iv = e.clamp(iv)
	if iv.Len() == 0 {
		return best, nil
	}
	best[src] = 1
	for t := iv.Lo; t <= iv.Hi; t++ {
		active := e.byTick[t]
		if len(active) == 0 {
			continue
		}
		// Relax to fixpoint: probabilities only increase and are bounded
		// by products of at most |active| contact factors, so this
		// terminates after at most |active| rounds.
		for changed := true; changed; {
			changed = false
			for _, ci := range active {
				c := &e.net.Contacts[ci]
				if p := best[c.A] * c.Prob; p > best[c.B] {
					best[c.B] = p
					changed = true
				}
				if p := best[c.B] * c.Prob; p > best[c.A] {
					best[c.A] = p
					changed = true
				}
			}
		}
	}
	return best, nil
}

// Reachable reports whether dst is reachable from src during iv with
// probability at least minProb (the pT threshold of §7).
func (e *Engine) Reachable(src, dst trajectory.ObjectID, iv contact.Interval, minProb float64) (bool, error) {
	if err := e.checkObjects(src, dst); err != nil {
		return false, err
	}
	if src == dst {
		return e.clamp(iv).Len() > 0, nil
	}
	p, err := e.BestProbDijkstra(src, dst, iv)
	if err != nil {
		return false, err
	}
	return p >= minProb, nil
}

// pqState is a Dijkstra state: object o holding the item at tick t after
// hops transfers. hops rides along for reporting; ordering and dominance
// stay on (cost, t).
type pqState struct {
	cost float64 // −log probability
	o    trajectory.ObjectID
	t    trajectory.Tick
	hops int32
}

type stateHeap []pqState

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(pqState)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BestProbDijkstra returns the same quantity as BestProb via a
// cost-ordered search over the time-expanded network.
//
// States carry both a cost (−log probability) and an arrival time, and
// neither dominates alone: a costlier path that arrives earlier can use a
// contact that has expired by the time the cheaper path arrives. A state
// is therefore pruned only when another settled state of the same object is
// at least as early *and* at least as cheap (Pareto dominance). Pops are
// cost-ordered, so the first settled destination state carries the optimal
// probability.
func (e *Engine) BestProbDijkstra(src, dst trajectory.ObjectID, iv contact.Interval) (float64, error) {
	r, err := e.BestProbPath(src, dst, iv, PathOpts{})
	return r.Prob, err
}

// PathOpts modifies a BestProbPath search per query, which is how one
// indexed Engine serves the whole probabilistic query surface without
// rebuilding: the registry's uncertain backend indexes the network once
// and threads each query's uniform probability and contact predicate
// through here.
type PathOpts struct {
	// Prob, when > 0, overrides every contact's probability with one
	// per-query value (the uniform per-contact p of Query.Semantics.Prob).
	Prob float64
	// Filter, when set, restricts the search to contacts it accepts —
	// exact predicate-filtered propagation, no projection needed.
	Filter func(Contact) bool
	// MaxHops, when > 0, bounds the number of transfers on the path.
	MaxHops int32
}

// PathResult describes the best path found by BestProbPath.
type PathResult struct {
	// Prob is the maximum path probability; 0 when dst is unreachable.
	Prob float64
	// Arrival is the tick the best-probability path delivers the item
	// (not necessarily the overall earliest arrival: a lower-probability
	// path may arrive sooner).
	Arrival trajectory.Tick
	// Hops is that path's transfer count.
	Hops int
	// OK reports whether any qualifying path exists.
	OK bool
}

// BestProbPath is BestProbDijkstra with per-query options and a full path
// report: the maximum probability along with the best path's arrival tick
// and transfer count.
//
// States carry both a cost (−log probability) and an arrival time, and
// neither dominates alone: a costlier path that arrives earlier can use a
// contact that has expired by the time the cheaper path arrives. A state
// is therefore pruned only when another settled state of the same object
// is at least as early *and* at least as cheap (Pareto dominance). Pops
// are cost-ordered, so the first settled destination state carries the
// optimal probability.
func (e *Engine) BestProbPath(src, dst trajectory.ObjectID, iv contact.Interval, opts PathOpts) (PathResult, error) {
	if err := e.checkObjects(src, dst); err != nil {
		return PathResult{}, err
	}
	iv = e.clamp(iv)
	if iv.Len() == 0 {
		return PathResult{}, nil
	}
	if src == dst {
		return PathResult{Prob: 1, Arrival: iv.Lo, OK: true}, nil
	}
	budget := opts.MaxHops
	if budget <= 0 {
		budget = math.MaxInt32
	}
	type timeCost struct {
		t    trajectory.Tick
		cost float64
	}
	frontier := make([][]timeCost, e.net.NumObjects)
	dominated := func(o trajectory.ObjectID, t trajectory.Tick, cost float64) bool {
		for _, f := range frontier[o] {
			if f.t <= t && f.cost <= cost {
				return true
			}
		}
		return false
	}
	h := &stateHeap{{cost: 0, o: src, t: iv.Lo}}
	for h.Len() > 0 {
		s := heap.Pop(h).(pqState)
		if dominated(s.o, s.t, s.cost) {
			continue
		}
		frontier[s.o] = append(frontier[s.o], timeCost{s.t, s.cost})
		if s.o == dst {
			return PathResult{Prob: math.Exp(-s.cost), Arrival: s.t, Hops: int(s.hops), OK: true}, nil
		}
		if s.hops >= budget {
			continue
		}
		// Relax every contact of s.o active at or after s.t and within
		// the interval; the transfer cost is time-independent, so the
		// earliest availability max(s.t, Validity.Lo) dominates later
		// instants of the same contact.
		for _, ci := range e.byObject[s.o] {
			c := &e.net.Contacts[ci]
			if c.Validity.Hi < s.t || c.Validity.Lo > iv.Hi {
				continue
			}
			if opts.Filter != nil && !opts.Filter(*c) {
				continue
			}
			other := c.A
			if other == s.o {
				other = c.B
			}
			when := s.t
			if c.Validity.Lo > when {
				when = c.Validity.Lo
			}
			p := c.Prob
			if opts.Prob > 0 {
				p = opts.Prob
				if p > 1 {
					p = 1
				}
			}
			cost := s.cost - math.Log(p)
			if !dominated(other, when, cost) {
				heap.Push(h, pqState{cost: cost, o: other, t: when, hops: s.hops + 1})
			}
		}
	}
	return PathResult{}, nil
}
