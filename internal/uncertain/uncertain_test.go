package uncertain

import (
	"math"
	"math/rand"
	"testing"

	"streach/internal/contact"
	"streach/internal/mobility"
	"streach/internal/queries"
)

// handNetwork builds the worked example used by several tests:
//
//	0 —0.5— 1 at ticks [0,1]
//	1 —0.8— 2 at tick  [3,3]
//	0 —0.9— 3 at tick  [2,2]
//	3 —0.9— 2 at tick  [4,4]
//
// Best 0→2 paths: via 1 = 0.4, via 3 = 0.81.
func handNetwork() *Network {
	return &Network{
		NumObjects: 4,
		NumTicks:   6,
		Contacts: []Contact{
			{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 1}, Prob: 0.5},
			{A: 1, B: 2, Validity: contact.Interval{Lo: 3, Hi: 3}, Prob: 0.8},
			{A: 0, B: 3, Validity: contact.Interval{Lo: 2, Hi: 2}, Prob: 0.9},
			{A: 2, B: 3, Validity: contact.Interval{Lo: 4, Hi: 4}, Prob: 0.9},
		},
	}
}

func TestHandExample(t *testing.T) {
	e, err := NewEngine(handNetwork())
	if err != nil {
		t.Fatal(err)
	}
	iv := contact.Interval{Lo: 0, Hi: 5}
	p, err := e.BestProb(0, 2, iv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.81) > 1e-12 {
		t.Fatalf("BestProb(0→2) = %v, want 0.81", p)
	}
	pd, err := e.BestProbDijkstra(0, 2, iv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pd-0.81) > 1e-12 {
		t.Fatalf("Dijkstra(0→2) = %v, want 0.81", pd)
	}
	// Threshold queries around the optimum.
	if ok, _ := e.Reachable(0, 2, iv, 0.8); !ok {
		t.Error("Reachable at pT=0.8: want true")
	}
	if ok, _ := e.Reachable(0, 2, iv, 0.82); ok {
		t.Error("Reachable at pT=0.82: want false")
	}
}

// TestEarlierCostlierPath exercises the Pareto case: the cheaper path into
// an intermediate object arrives too late for the onward contact, so the
// optimum must route through the costlier-but-earlier arrival.
func TestEarlierCostlierPath(t *testing.T) {
	n := &Network{
		NumObjects: 4,
		NumTicks:   10,
		Contacts: []Contact{
			// Expensive early arrival at object 2.
			{A: 0, B: 2, Validity: contact.Interval{Lo: 0, Hi: 0}, Prob: 0.3},
			// Cheap late arrival at object 2 via object 1.
			{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 0}, Prob: 0.9},
			{A: 1, B: 2, Validity: contact.Interval{Lo: 6, Hi: 6}, Prob: 0.9},
			// Onward contact expires before the cheap arrival.
			{A: 2, B: 3, Validity: contact.Interval{Lo: 2, Hi: 2}, Prob: 1.0},
		},
	}
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	iv := contact.Interval{Lo: 0, Hi: 9}
	want := 0.3
	p, _ := e.BestProb(0, 3, iv)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("sweep BestProb(0→3) = %v, want %v", p, want)
	}
	pd, _ := e.BestProbDijkstra(0, 3, iv)
	if math.Abs(pd-want) > 1e-12 {
		t.Fatalf("Dijkstra BestProb(0→3) = %v, want %v", pd, want)
	}
}

func TestSameInstantChain(t *testing.T) {
	n := &Network{
		NumObjects: 3,
		NumTicks:   2,
		Contacts: []Contact{
			{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 0}, Prob: 0.5},
			{A: 1, B: 2, Validity: contact.Interval{Lo: 0, Hi: 0}, Prob: 0.5},
		},
	}
	e, err := NewEngine(n)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := e.BestProb(0, 2, contact.Interval{Lo: 0, Hi: 0})
	if math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("same-instant chain: %v, want 0.25", p)
	}
}

func TestSweepAgreesWithDijkstraRandom(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 40, NumTicks: 250, Seed: 41})
	net := contact.Extract(d)
	rng := rand.New(rand.NewSource(43))
	un := FromNetwork(net, func(contact.Contact) float64 {
		return 0.2 + 0.8*rng.Float64()
	})
	e, err := NewEngine(un)
	if err != nil {
		t.Fatal(err)
	}
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: 40, NumTicks: 250, Count: 80, MinLen: 20, MaxLen: 200, Seed: 47,
	})
	for _, q := range work {
		a, err := e.BestProb(q.Src, q.Dst, q.Interval)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.BestProbDijkstra(q.Src, q.Dst, q.Interval)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("%v: sweep %v, dijkstra %v", q, a, b)
		}
	}
}

// TestCertainNetworkMatchesDeterministicOracle pins the p=1 special case to
// the deterministic reachability semantics.
func TestCertainNetworkMatchesDeterministicOracle(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 35, NumTicks: 200, Seed: 53})
	net := contact.Extract(d)
	oracle := queries.NewOracle(net)
	un := FromNetwork(net, func(contact.Contact) float64 { return 1 })
	e, err := NewEngine(un)
	if err != nil {
		t.Fatal(err)
	}
	work := queries.RandomWorkload(queries.WorkloadConfig{
		NumObjects: 35, NumTicks: 200, Count: 80, MinLen: 10, MaxLen: 150, Seed: 59,
	})
	for _, q := range work {
		want := oracle.Reachable(q)
		got, err := e.Reachable(q.Src, q.Dst, q.Interval, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: uncertain %v, oracle %v", q, got, want)
		}
	}
}

func TestValidationAndDegenerates(t *testing.T) {
	if _, err := NewEngine(&Network{}); err == nil {
		t.Error("empty network: want error")
	}
	bad := handNetwork()
	bad.Contacts[0].Prob = 1.5
	if _, err := NewEngine(bad); err == nil {
		t.Error("probability > 1: want error")
	}
	e, err := NewEngine(handNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.BestProb(-1, 0, contact.Interval{Lo: 0, Hi: 1}); err == nil {
		t.Error("bad source: want error")
	}
	p, err := e.BestProb(0, 2, contact.Interval{Lo: 3, Hi: 1})
	if err != nil || p != 0 {
		t.Errorf("empty interval: got (%v, %v)", p, err)
	}
	ok, err := e.Reachable(2, 2, contact.Interval{Lo: 0, Hi: 1}, 1)
	if err != nil || !ok {
		t.Errorf("self query: got (%v, %v)", ok, err)
	}
	// FromNetwork drops non-positive probabilities and clamps p > 1.
	det := contact.FromContacts(2, 5, []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 1}},
	})
	un := FromNetwork(det, func(contact.Contact) float64 { return -1 })
	if len(un.Contacts) != 0 {
		t.Errorf("negative probability not dropped: %v", un.Contacts)
	}
	un = FromNetwork(det, func(contact.Contact) float64 { return 7 })
	if len(un.Contacts) != 1 || un.Contacts[0].Prob != 1 {
		t.Errorf("probability not clamped: %v", un.Contacts)
	}
}

func TestBestProbAllMonotoneInInterval(t *testing.T) {
	d := mobility.RandomWaypoint(mobility.RWPConfig{NumObjects: 30, NumTicks: 150, Seed: 61})
	net := contact.Extract(d)
	rng := rand.New(rand.NewSource(67))
	un := FromNetwork(net, func(contact.Contact) float64 { return 0.3 + 0.7*rng.Float64() })
	e, err := NewEngine(un)
	if err != nil {
		t.Fatal(err)
	}
	short, err := e.BestProbAll(3, contact.Interval{Lo: 10, Hi: 60})
	if err != nil {
		t.Fatal(err)
	}
	long, err := e.BestProbAll(3, contact.Interval{Lo: 10, Hi: 140})
	if err != nil {
		t.Fatal(err)
	}
	for o := range short {
		if long[o] < short[o]-1e-12 {
			t.Fatalf("object %d: widening the interval reduced probability %v → %v",
				o, short[o], long[o])
		}
	}
}

// TestNaNProbabilityRejected pins the NaN clamping fix: NaN fails every
// comparison, so the old `p <= 0` / `Prob <= 0 || Prob > 1` guards let it
// through, and a single NaN contact silently disabled every relaxation it
// touched.
func TestNaNProbabilityRejected(t *testing.T) {
	det := contact.FromContacts(2, 5, []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 0, Hi: 1}},
	})
	un := FromNetwork(det, func(contact.Contact) float64 { return math.NaN() })
	if len(un.Contacts) != 0 {
		t.Fatalf("NaN probability not dropped by FromNetwork: %v", un.Contacts)
	}
	bad := handNetwork()
	bad.Contacts[0].Prob = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a NaN probability")
	}
	if _, err := NewEngine(bad); err == nil {
		t.Fatal("NewEngine accepted a NaN probability")
	}
}

func TestFromNetworkKeepsSidecar(t *testing.T) {
	det := contact.FromContacts(2, 8, []contact.Contact{
		{A: 0, B: 1, Validity: contact.Interval{Lo: 1, Hi: 3}, Weight: 2.5, Dur: 9},
	})
	un := FromNetwork(det, func(contact.Contact) float64 { return 0.5 })
	if len(un.Contacts) != 1 {
		t.Fatalf("lifted %d contacts, want 1", len(un.Contacts))
	}
	c := un.Contacts[0]
	if c.Weight != 2.5 || c.Dur != 9 {
		t.Fatalf("sidecar lost in lift: %+v", c)
	}
	d := c.Deterministic()
	if d.Weight != 2.5 || d.Dur != 9 || d.A != 0 || d.B != 1 {
		t.Fatalf("Deterministic() = %+v", d)
	}
}

func TestBestProbPathOptions(t *testing.T) {
	e, err := NewEngine(handNetwork())
	if err != nil {
		t.Fatal(err)
	}
	iv := contact.Interval{Lo: 0, Hi: 5}
	// Baseline: best 0→2 path goes 0-3-2 (0.81) in two hops, arriving at 4.
	r, err := e.BestProbPath(0, 2, iv, PathOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK || math.Abs(r.Prob-0.81) > 1e-12 || r.Hops != 2 || r.Arrival != 4 {
		t.Fatalf("baseline path = %+v", r)
	}
	// Uniform probability override: both 2-hop paths now score p².
	r, _ = e.BestProbPath(0, 2, iv, PathOpts{Prob: 0.6})
	if !r.OK || math.Abs(r.Prob-0.36) > 1e-12 || r.Hops != 2 {
		t.Fatalf("override path = %+v", r)
	}
	// Filtering out object 3's contacts forces the 0-1-2 route (0.4).
	noThree := func(c Contact) bool { return c.A != 3 && c.B != 3 }
	r, _ = e.BestProbPath(0, 2, iv, PathOpts{Filter: noThree})
	if !r.OK || math.Abs(r.Prob-0.4) > 1e-12 || r.Arrival != 3 {
		t.Fatalf("filtered path = %+v", r)
	}
	// A 1-hop budget reaches 1 and 3 but never 2.
	r, _ = e.BestProbPath(0, 2, iv, PathOpts{MaxHops: 1})
	if r.OK {
		t.Fatalf("budgeted path should not exist: %+v", r)
	}
	r, _ = e.BestProbPath(0, 1, iv, PathOpts{MaxHops: 1})
	if !r.OK || r.Hops != 1 {
		t.Fatalf("1-hop path = %+v", r)
	}
	// Self query succeeds at the interval start.
	r, _ = e.BestProbPath(2, 2, iv, PathOpts{})
	if !r.OK || r.Prob != 1 || r.Hops != 0 || r.Arrival != iv.Lo {
		t.Fatalf("self path = %+v", r)
	}
}
