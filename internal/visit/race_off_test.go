//go:build !race

package visit

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
