//go:build race

package visit

// raceEnabled reports that the race detector instruments this build;
// allocation-count assertions are skipped because instrumentation
// allocates.
const raceEnabled = true
