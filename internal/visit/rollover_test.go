package visit

import "testing"

// rollover_test.go forces epoch-counter rollover on every epoch-stamped
// structure — the "many pool cycles" regression: after 2^32 Resets the
// uint32 generation counter wraps, and a stale stamp equal to the new
// epoch value would report phantom membership unless the wrap clears the
// backing array. The tests pin the epoch just below the boundary and step
// across it several times.

// epochs drives s through Resets from just below the wrap to just past
// it, verifying emptiness after every Reset via check and re-populating
// via fill.
func crossWrap(t *testing.T, reset func(), setEpoch func(uint32), fill func(i int), check func(i int) bool) {
	t.Helper()
	reset()
	setEpoch(^uint32(0) - 2)
	for step := 0; step < 6; step++ {
		reset() // the third Reset wraps the counter
		for i := 0; i < 8; i++ {
			if check(i) {
				t.Fatalf("step %d: stale membership for id %d across epoch rollover", step, i)
			}
		}
		fill(step % 8)
		if !check(step % 8) {
			t.Fatalf("step %d: fresh entry lost after rollover", step)
		}
	}
}

func TestSetRollover(t *testing.T) {
	var s Set
	crossWrap(t,
		func() { s.Reset(8) },
		func(e uint32) { s.epoch = e },
		func(i int) { s.Visit(i) },
		func(i int) bool { return s.Has(i) },
	)
}

func TestTicksRollover(t *testing.T) {
	var tk Ticks
	crossWrap(t,
		func() { tk.Reset(8) },
		func(e uint32) { tk.epoch = e },
		func(i int) { tk.Set(i, int32(i)) },
		func(i int) bool { _, ok := tk.Get(i); return ok },
	)
}

func TestTableRollover(t *testing.T) {
	var tb Table[string]
	crossWrap(t,
		func() { tb.Reset(8) },
		func(e uint32) { tb.epoch = e },
		func(i int) { tb.Set(i, "x") },
		func(i int) bool { _, ok := tb.Get(i); return ok },
	)
}

// TestTicksRolloverValueIntegrity pins the subtler hazard: after a wrap,
// values of dead epochs are still physically present in the vals array;
// Get must hide them, and a post-wrap Set must win over them.
func TestTicksRolloverValueIntegrity(t *testing.T) {
	var tk Ticks
	tk.Reset(4)
	tk.Set(1, 777)
	tk.epoch = ^uint32(0)
	tk.stamps[2] = ^uint32(0) // legitimately stamped at the last pre-wrap epoch
	tk.vals[2] = 888
	tk.Reset(4) // wraps: clears stamps, epoch restarts at 1
	for i := 0; i < 4; i++ {
		if v, ok := tk.Get(i); ok {
			t.Fatalf("post-wrap Get(%d) resurrected stale value %d", i, v)
		}
	}
	tk.Set(2, 5)
	if v, ok := tk.Get(2); !ok || v != 5 {
		t.Fatalf("post-wrap Set lost: got (%d, %v)", v, ok)
	}
}

// TestRolloverAfterGrowth checks the grow path resets the epoch cycle:
// growing the backing array discards all stamps, so the restarted epoch
// cannot alias entries from the smaller array's lifetime.
func TestRolloverAfterGrowth(t *testing.T) {
	var s Set
	s.Reset(4)
	s.epoch = ^uint32(0) - 1
	s.Reset(4)
	s.Visit(3) // stamped at MaxUint32
	s.Reset(16)
	if s.Has(3) {
		t.Fatal("growth carried a stale visit into the new array")
	}
	if s.epoch != 1 {
		t.Fatalf("growth restarted epoch at %d, want 1", s.epoch)
	}
}
