// Package visit provides the allocation-free working state of the query
// hot path: visited sets, per-node value tables and frontier queues over
// dense integer ID spaces (object IDs, graph node IDs, grid cell IDs).
//
// All structures are epoch-stamped: Reset bumps a generation counter
// instead of clearing memory, so between queries a traversal pays O(1) to
// start fresh while its backing arrays — sized once to the dataset's ID
// space — are reused. Engines keep one scratch value per concurrent query
// in a Pool (a typed sync.Pool), which is what makes steady-state query
// evaluation allocate nothing: the hot path's maps and slices of the
// original implementation all live here now.
//
// None of the types are safe for concurrent use; a scratch value belongs
// to exactly one query at a time (the Pool enforces the handoff).
package visit

import "sync"

// Set is an epoch-stamped visited set over dense IDs in [0, n).
type Set struct {
	stamps []uint32
	epoch  uint32
}

// Reset prepares the set for IDs in [0, n), emptying it in O(1) (O(n) only
// when growing the backing array or on epoch wraparound).
func (s *Set) Reset(n int) {
	if n > len(s.stamps) {
		s.stamps = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		clear(s.stamps)
		s.epoch = 1
	}
}

// Visit marks id visited and reports whether it was new.
func (s *Set) Visit(id int) bool {
	if s.stamps[id] == s.epoch {
		return false
	}
	s.stamps[id] = s.epoch
	return true
}

// Has reports whether id has been visited since the last Reset.
func (s *Set) Has(id int) bool { return s.stamps[id] == s.epoch }

// Ticks is an epoch-stamped map from dense IDs to an int32 value (arrival
// ticks, injection bounds), the scratch behind the per-direction visited
// maps of the bidirectional traversals.
type Ticks struct {
	stamps []uint32
	vals   []int32
	epoch  uint32
}

// Reset prepares the table for IDs in [0, n); see Set.Reset.
func (t *Ticks) Reset(n int) {
	if n > len(t.stamps) {
		t.stamps = make([]uint32, n)
		t.vals = make([]int32, n)
		t.epoch = 0
	}
	t.epoch++
	if t.epoch == 0 {
		clear(t.stamps)
		t.epoch = 1
	}
}

// Get returns the value recorded for id and whether one exists.
func (t *Ticks) Get(id int) (int32, bool) {
	if t.stamps[id] != t.epoch {
		return 0, false
	}
	return t.vals[id], true
}

// Set records v for id.
func (t *Ticks) Set(id int, v int32) {
	t.stamps[id] = t.epoch
	t.vals[id] = v
}

// Table is an epoch-stamped map from dense IDs to arbitrary values — the
// replacement for the per-query decoded-record maps. Values of dead epochs
// are kept until overwritten (they pin no more memory than the live query
// working set did).
type Table[V any] struct {
	stamps []uint32
	vals   []V
	epoch  uint32
}

// Reset prepares the table for IDs in [0, n); see Set.Reset.
func (t *Table[V]) Reset(n int) {
	if n > len(t.stamps) {
		t.stamps = make([]uint32, n)
		t.vals = make([]V, n)
		t.epoch = 0
	}
	t.epoch++
	if t.epoch == 0 {
		clear(t.stamps)
		t.epoch = 1
	}
}

// Get returns the value recorded for id and whether one exists.
func (t *Table[V]) Get(id int) (V, bool) {
	if t.stamps[id] != t.epoch {
		var zero V
		return zero, false
	}
	return t.vals[id], true
}

// Set records v for id.
func (t *Table[V]) Set(id int, v V) {
	t.stamps[id] = t.epoch
	t.vals[id] = v
}

// Deque is a reusable ring-buffer double-ended queue: PushBack+PopFront is
// the BFS frontier, PushBack+PopBack the DFS stack. The backing array
// grows to the high-water mark of its queries and is then reused.
type Deque[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// Reset empties the deque, keeping its capacity.
func (q *Deque[T]) Reset() { q.head, q.n = 0, 0 }

// Len returns the number of queued elements.
func (q *Deque[T]) Len() int { return q.n }

// PushBack appends v at the back.
func (q *Deque[T]) PushBack(v T) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

// PopFront removes and returns the front element; ok is false when empty.
func (q *Deque[T]) PopFront() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	v = q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v, true
}

// PopBack removes and returns the back element; ok is false when empty.
func (q *Deque[T]) PopBack() (v T, ok bool) {
	if q.n == 0 {
		return v, false
	}
	q.n--
	v = q.buf[(q.head+q.n)%len(q.buf)]
	return v, true
}

func (q *Deque[T]) grow() {
	next := make([]T, max(4, 2*len(q.buf)))
	for i := 0; i < q.n; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

// Pool hands out per-query scratch values, one per in-flight query; it is
// a typed wrapper over sync.Pool, so steady-state traffic recycles scratch
// instead of allocating it.
type Pool[S any] struct {
	p sync.Pool
}

// NewPool returns a pool whose empty slots are filled by alloc.
func NewPool[S any](alloc func() *S) *Pool[S] {
	return &Pool[S]{p: sync.Pool{New: func() any { return alloc() }}}
}

// Get takes a scratch value from the pool (allocating via the constructor
// only when the pool is empty).
func (p *Pool[S]) Get() *S { return p.p.Get().(*S) }

// Put returns s to the pool. The caller must not touch s afterwards.
func (p *Pool[S]) Put(s *S) { p.p.Put(s) }
