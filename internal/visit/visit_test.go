package visit

import (
	"testing"
)

func TestSetVisitAndReset(t *testing.T) {
	var s Set
	s.Reset(10)
	if !s.Visit(3) || s.Visit(3) {
		t.Fatal("first Visit must report new, second must not")
	}
	if !s.Has(3) || s.Has(4) {
		t.Fatal("Has disagrees with Visit")
	}
	s.Reset(10)
	if s.Has(3) {
		t.Fatal("Reset did not empty the set")
	}
	s.Reset(100) // grow
	if s.Has(3) || s.Has(99) {
		t.Fatal("grown set not empty")
	}
	if !s.Visit(99) {
		t.Fatal("grown range not usable")
	}
}

func TestSetEpochWraparound(t *testing.T) {
	var s Set
	s.Reset(4)
	s.Visit(1)
	s.epoch = ^uint32(0) // force the next Reset to wrap
	s.stamps[2] = 0      // would alias epoch 0 if wrap were unhandled
	s.Reset(4)
	if s.Has(1) || s.Has(2) {
		t.Fatal("wraparound leaked stale visits")
	}
	if !s.Visit(2) {
		t.Fatal("post-wrap Visit broken")
	}
}

func TestTicks(t *testing.T) {
	var tk Ticks
	tk.Reset(8)
	if _, ok := tk.Get(5); ok {
		t.Fatal("fresh table not empty")
	}
	tk.Set(5, -7)
	if v, ok := tk.Get(5); !ok || v != -7 {
		t.Fatalf("Get(5) = %d, %v", v, ok)
	}
	tk.Set(5, 9)
	if v, _ := tk.Get(5); v != 9 {
		t.Fatal("overwrite lost")
	}
	tk.Reset(8)
	if _, ok := tk.Get(5); ok {
		t.Fatal("Reset did not empty the table")
	}
}

func TestTable(t *testing.T) {
	var tb Table[[]byte]
	tb.Reset(4)
	tb.Set(2, []byte("abc"))
	if v, ok := tb.Get(2); !ok || string(v) != "abc" {
		t.Fatalf("Get(2) = %q, %v", v, ok)
	}
	if _, ok := tb.Get(1); ok {
		t.Fatal("unset id present")
	}
	tb.Reset(4)
	if _, ok := tb.Get(2); ok {
		t.Fatal("Reset did not empty the table")
	}
}

func TestDequeFIFOAndLIFO(t *testing.T) {
	var q Deque[int]
	for i := 0; i < 10; i++ {
		q.PushBack(i)
	}
	for want := 0; want < 5; want++ {
		if v, ok := q.PopFront(); !ok || v != want {
			t.Fatalf("PopFront = %d, %v; want %d", v, ok, want)
		}
	}
	for want := 9; want >= 5; want-- {
		if v, ok := q.PopBack(); !ok || v != want {
			t.Fatalf("PopBack = %d, %v; want %d", v, ok, want)
		}
	}
	if _, ok := q.PopFront(); ok || q.Len() != 0 {
		t.Fatal("deque not empty")
	}
}

// TestDequeWrapGrowth exercises growth while the ring is wrapped, the case
// a naive copy gets wrong.
func TestDequeWrapGrowth(t *testing.T) {
	var q Deque[int]
	push := 0
	for i := 0; i < 3; i++ {
		q.PushBack(push)
		push++
	}
	q.PopFront() // head now > 0
	for i := 0; i < 40; i++ {
		q.PushBack(push)
		push++
	}
	want := 1
	for q.Len() > 0 {
		v, _ := q.PopFront()
		if v != want {
			t.Fatalf("got %d, want %d", v, want)
		}
		want++
	}
	if want != push {
		t.Fatalf("drained %d elements, want %d", want-1, push-1)
	}
}

func TestDequeResetKeepsCapacity(t *testing.T) {
	var q Deque[int]
	for i := 0; i < 100; i++ {
		q.PushBack(i)
	}
	cap0 := len(q.buf)
	q.Reset()
	if q.Len() != 0 || len(q.buf) != cap0 {
		t.Fatal("Reset must empty without shrinking")
	}
}

func TestPoolRecycles(t *testing.T) {
	type scratch struct{ s Set }
	allocs := 0
	p := NewPool(func() *scratch { allocs++; return &scratch{} })
	a := p.Get()
	a.s.Reset(10)
	a.s.Visit(1)
	p.Put(a)
	b := p.Get()
	b.s.Reset(10)
	if b.s.Has(1) {
		t.Fatal("recycled scratch not reset")
	}
	p.Put(b)
	if allocs < 1 {
		t.Fatal("constructor never ran")
	}
}

// TestSteadyStateNoAllocs pins the whole point of the package: after the
// first use, Reset+traverse cycles over pooled scratch allocate nothing.
func TestSteadyStateNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts only hold un-instrumented")
	}
	type scratch struct {
		set Set
		tk  Ticks
		q   Deque[int32]
	}
	p := NewPool(func() *scratch { return &scratch{} })
	cycle := func() {
		sc := p.Get()
		sc.set.Reset(256)
		sc.tk.Reset(256)
		sc.q.Reset()
		for i := 0; i < 256; i++ {
			sc.set.Visit(i)
			sc.tk.Set(i, int32(i))
			sc.q.PushBack(int32(i))
		}
		for sc.q.Len() > 0 {
			sc.q.PopFront()
		}
		p.Put(sc)
	}
	cycle() // warm: size the arrays
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("steady-state cycle allocates %.1f times", n)
	}
}
