// LiveEngine: a query engine over a live position feed, queryable while
// ingesting. This is the streaming completion of the segmented
// architecture — where "segmented:<name>" slices a frozen dataset,
// LiveEngine grows the slices as the feed arrives:
//
//	tail    — appends land in one mutable in-memory segment (an
//	          incremental contact builder over the current time slab only);
//	sealed  — when the tail's slab closes it is flushed through the base
//	          backend's builder into an immutable index segment;
//	query   — the cross-segment planner walks sealed segments plus a
//	          snapshot of the tail, so answers always cover every ingested
//	          instant with no rebuild of historical slabs, ever.
//
// Appends cost O(one instant) amortized (plus one slab-sized index build
// each SegmentTicks instants); queries are lock-free after taking a
// consistent view. One goroutine may append while any number query.

package streach

import (
	"context"
	"errors"
	"fmt"
	"time"

	"streach/internal/contact"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/segment"
	"streach/internal/stjoin"
)

// LiveEngine is an Engine over a live position feed. It satisfies Engine
// (and Segmented) like every registry backend, but its time domain grows
// with each AddInstant; queries are evaluated against every instant
// ingested before the query took its view.
type LiveEngine struct {
	name       string
	base       string
	numObjects int
	joiner     *stjoin.Joiner
	log        *segment.Log[frontierCore]

	// pool is the buffer pool the sealed disk-resident segments share;
	// nil for memory-resident bases.
	pool *BufferPool

	// ingestHook and sealHook are the notification hooks of OnIngest and
	// OnSegmentSeal. They are invoked synchronously from AddInstant (the
	// appender goroutine); registration must happen before the first
	// append.
	ingestHook func(tick Tick)
	sealHook   func(span Interval)
}

// ErrNotLiveCapable reports a backend that cannot seal live segments: only
// contact-sourced backends with frontier entry points (reachgraph,
// reachgraph-mem, oracle) can.
var ErrNotLiveCapable = errors.New("streach: backend cannot serve a live feed")

// NewLiveEngine returns a live engine for numObjects objects moving in env
// with contact threshold contactDist. Sealed slabs are indexed with the
// named base backend, which must open from a contact network and support
// the segmented planner ("reachgraph", "reachgraph-mem" or "oracle");
// Options.SegmentTicks sets the slab width and disk-resident segments
// share one buffer pool (Options.Pool or a private one).
func NewLiveEngine(backend string, numObjects int, env Rect, contactDist float64, opts Options) (*LiveEngine, error) {
	spec, ok := lookupSpec(backend)
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownBackend, backend, joinLiveCapable())
	}
	if spec.info.NeedsTrajectories {
		return nil, fmt.Errorf("live %q: %w (indexes trajectories)", spec.info.Name, ErrNotLiveCapable)
	}
	if numObjects <= 0 {
		return nil, errors.New("streach: live engine needs at least one object")
	}
	if contactDist <= 0 {
		return nil, errors.New("streach: contact threshold must be positive")
	}
	slabOpts := withSharedSlabPool(opts, spec.info.DiskResident)
	build := func(span Interval, net *contact.Network) (frontierCore, error) {
		core, err := spec.open(&ContactNetwork{net: net}, slabOpts)
		if err != nil {
			return nil, err
		}
		fc, ok := core.(frontierCore)
		if !ok {
			return nil, fmt.Errorf("live %q: %w (no frontier entry points)", spec.info.Name, ErrNotLiveCapable)
		}
		return fc, nil
	}
	// Probe seal-ability now, not at the first slab boundary: a one-tick
	// empty network must build.
	if _, err := build(NewInterval(0, 0), contact.FromContacts(numObjects, 1, nil)); err != nil {
		return nil, err
	}
	return &LiveEngine{
		name:       "live:" + spec.info.Name,
		base:       spec.info.Name,
		numObjects: numObjects,
		joiner:     stjoin.NewJoiner(env, contactDist),
		log:        segment.NewLog[frontierCore](numObjects, opts.SegmentTicks, build),
		pool:       slabOpts.Pool,
	}, nil
}

// OnIngest registers fn to be invoked synchronously after every
// successfully ingested instant, with the tick just appended. A serving
// layer uses it to invalidate derived state (query caches) whose interval
// covers the new instant. Register before the first AddInstant; the hook
// runs on the appender goroutine and must not call AddInstant itself.
func (le *LiveEngine) OnIngest(fn func(tick Tick)) { le.ingestHook = fn }

// OnSegmentSeal registers fn to be invoked synchronously whenever an
// append closes the current time slab and seals it into an immutable
// index segment, with the sealed slab's global tick span. Register before
// the first AddInstant; the hook runs on the appender goroutine, after
// the seal is published (a query issued from inside the hook already sees
// the sealed segment).
func (le *LiveEngine) OnSegmentSeal(fn func(span Interval)) { le.sealHook = fn }

func joinLiveCapable() string {
	return "oracle, reachgraph, reachgraph-mem"
}

// AddInstant ingests the next instant of the feed; positions[i] is object
// i's position. Appends must come from a single goroutine; queries may run
// concurrently. When the append closes the current slab, the slab is
// sealed into an immutable index segment before AddInstant returns.
func (le *LiveEngine) AddInstant(positions []Point) error {
	if len(positions) != le.numObjects {
		return fmt.Errorf("streach: got %d positions, want %d", len(positions), le.numObjects)
	}
	var pairs []stjoin.Pair
	le.joiner.Join(positions, func(a, b int) bool {
		pairs = append(pairs, stjoin.MakePair(ObjectID(a), ObjectID(b)))
		return true
	})
	tick := Tick(le.log.NumTicks())
	sealed, span, err := le.log.AddInstant(pairs)
	if err != nil {
		return err
	}
	if le.ingestHook != nil {
		le.ingestHook(tick)
	}
	if sealed && le.sealHook != nil {
		le.sealHook(span)
	}
	return nil
}

// NumTicks returns the number of instants ingested so far.
func (le *LiveEngine) NumTicks() int { return le.log.NumTicks() }

// NumSealedSegments returns the number of sealed (immutable) segments.
func (le *LiveEngine) NumSealedSegments() int { return le.log.NumSealed() }

// Snapshot returns the contact network over every instant ingested so far
// — the same network a ContactStream would snapshot — for validation
// against ground truth. The engine remains usable.
func (le *LiveEngine) Snapshot() *ContactNetwork {
	return &ContactNetwork{net: le.log.Snapshot()}
}

// view assembles the planner's slab list: sealed segments plus, when the
// tail holds instants, an oracle core over the tail's slab-local network.
// Everything returned is immutable, so the query proceeds lock-free.
func (le *LiveEngine) view() ([]segSlab, int) {
	sealed, tailSpan, tailNet, numTicks := le.log.View()
	slabs := make([]segSlab, 0, len(sealed)+1)
	for _, s := range sealed {
		slabs = append(slabs, segSlab{span: s.Span, core: s.Value})
	}
	if tailNet != nil {
		slabs = append(slabs, segSlab{span: tailSpan, core: oracleCore{o: queries.NewOracle(tailNet)}})
	}
	return slabs, numTicks
}

// Name returns "live:<base>".
func (le *LiveEngine) Name() string { return le.name }

// Reachable answers q over every instant ingested before the call took its
// view of the log. Queries with an active Semantics spec route through the
// semantics layer like every registry engine.
func (le *LiveEngine) Reachable(ctx context.Context, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if q.Semantics.Active() {
		return evalReachableSem(ctx, le.semView(), q)
	}
	slabs, numTicks := le.view()
	var acct pagefile.Stats
	start := time.Now()
	ok, expanded, err := planReach(ctx, slabs, le.numObjects, numTicks, q, &acct)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Query:     q,
		Reachable: ok,
		IO:        statsOf(acct),
		Latency:   time.Since(start),
		Expanded:  expanded,
		Evaluated: true,
		Arrival:   -1,
		Hops:      -1,
		Native:    true,
	}, nil
}

// ReachableSet returns every object reachable from src during iv, sorted
// ascending and deduplicated.
func (le *LiveEngine) ReachableSet(ctx context.Context, src ObjectID, iv Interval) (SetResult, error) {
	if err := ctx.Err(); err != nil {
		return SetResult{}, err
	}
	slabs, numTicks := le.view()
	var acct pagefile.Stats
	start := time.Now()
	objs, _, err := planSet(ctx, slabs, le.numObjects, numTicks, src, iv, &acct)
	if err != nil {
		return SetResult{}, err
	}
	objs = sortDedupObjects(objs)
	return SetResult{
		Src:      src,
		Interval: iv,
		Objects:  objs,
		IO:       statsOf(acct),
		Latency:  time.Since(start),
		Expanded: len(objs),
	}, nil
}

// liveSemView is the per-query semEvaluator of a LiveEngine: it pins one
// consistent view of the log so a semantic query evaluates against a
// fixed set of ingested instants. Evaluation goes through the
// cross-segment planner when every slab of the view supports the spec
// (the tail's oracle core always does), and through a brute-force oracle
// over a fresh feed snapshot otherwise — the snapshot may include
// instants ingested after the view was taken; answers remain exact for
// every instant of the view.
type liveSemView struct {
	le       *LiveEngine
	slabs    []segSlab
	numTicks int
}

func (le *LiveEngine) semView() *liveSemView {
	slabs, numTicks := le.view()
	return &liveSemView{le: le, slabs: slabs, numTicks: numTicks}
}

func (v *liveSemView) semDims() (int, int) { return v.le.numObjects, v.numTicks }

func (v *liveSemView) semNativeFor(spec semSpec) bool {
	for _, s := range v.slabs {
		sc, ok := s.core.(semCore)
		if !ok || !sc.semSupports(spec) {
			return false
		}
	}
	return true
}

func (v *liveSemView) semEvaluate(ctx context.Context, sc *semScratch, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, bool, error) {
	if v.semNativeFor(spec) {
		entries, n, err := planSemProfile(ctx, v.slabs, v.le.numObjects, v.numTicks, sc.entries[:0], seeds, iv, spec, earlyDst, acct)
		sc.entries = entries
		return entries, n, true, err
	}
	entries, n := queries.NewOracle(v.le.log.Snapshot()).ProfileFrom(seeds, iv, spec.budget, earlyDst)
	return entries, n, false, nil
}

// EarliestArrival returns the first ingested tick in iv at which dst
// holds an item initiated by src, over every instant ingested before the
// call took its view of the log. Arrival ticks carry across sealed-slab
// frontiers through the cross-segment planner; bases without a native
// arrival sweep fall back to an oracle over a fresh snapshot (all current
// live-capable bases are arrival-native).
func (le *LiveEngine) EarliestArrival(ctx context.Context, src, dst ObjectID, iv Interval) (ArrivalResult, error) {
	return evalEarliestArrival(ctx, le.semView(), src, dst, iv)
}

// TopKReachable ranks the objects reachable from src during iv under
// per-transfer decay; see Engine.TopKReachable. Transfer counting needs
// per-instant relaxation, so bases whose sealed segments cannot count
// hops (reachgraph, reachgraph-mem) answer through an oracle over a
// fresh snapshot of the ingested feed.
func (le *LiveEngine) TopKReachable(ctx context.Context, src ObjectID, iv Interval, k int, decay float64) (TopKResult, error) {
	return evalTopKReachable(ctx, le.semView(), src, iv, k, decay)
}

// IndexBytes returns the total on-disk size of the sealed segments (zero
// for memory-resident bases and before the first seal).
func (le *LiveEngine) IndexBytes() int64 {
	slabs, _ := le.view()
	var sum int64
	for _, s := range slabs {
		sum += s.core.indexBytes()
	}
	return sum
}

// IOTotals returns the cumulative simulated disk traffic of the sealed
// segments.
func (le *LiveEngine) IOTotals() IOStats {
	slabs, _ := le.view()
	var sum pagefile.Stats
	for _, s := range slabs {
		sum.Add(s.core.ioTotals())
	}
	return statsOf(sum)
}

// Stats returns a consistent snapshot of the live engine's observable
// state; see Engine.Stats. NumTicks and the segment counts reflect the
// instants ingested before the snapshot, and may lag an ongoing append by
// at most one instant.
func (le *LiveEngine) Stats() EngineStats {
	slabs, numTicks := le.view()
	st := EngineStats{
		Backend:        le.name,
		NumObjects:     le.numObjects,
		NumTicks:       numTicks,
		Segments:       len(slabs),
		SealedSegments: le.log.NumSealed(),
	}
	var io pagefile.Stats
	for _, s := range slabs {
		io.Add(s.core.ioTotals())
		st.IndexBytes += s.core.indexBytes()
	}
	st.IO = statsOf(io)
	if le.pool != nil {
		st.HasPool = true
		st.Pool = le.pool.Stats()
	}
	return st
}

// SegmentStats returns one entry per segment — sealed segments first, then
// the mutable tail (which never charges I/O) when it holds instants.
func (le *LiveEngine) SegmentStats() []SegmentStats {
	slabs, _ := le.view()
	out := make([]SegmentStats, len(slabs))
	for i, s := range slabs {
		out[i] = SegmentStats{
			Span:       s.span,
			IO:         statsOf(s.core.ioTotals()),
			IndexBytes: s.core.indexBytes(),
		}
	}
	return out
}

var _ Engine = (*LiveEngine)(nil)
var _ Segmented = (*LiveEngine)(nil)
