// LiveEngine: a query engine over a live position feed, queryable while
// ingesting. This is the streaming completion of the segmented
// architecture — where "segmented:<name>" slices a frozen dataset,
// LiveEngine grows the slices as the feed arrives:
//
//	tail    — appends land in one mutable in-memory segment (an
//	          incremental contact builder over the current time slab only);
//	sealed  — when the tail's slab closes it is flushed through the base
//	          backend's builder into an immutable index segment;
//	query   — the cross-segment planner walks sealed segments plus a
//	          snapshot of the tail, so answers always cover every ingested
//	          instant with no rebuild of historical slabs, ever.
//
// Real feeds are late, duplicated and occasionally wrong, so ingestion is
// event-based underneath: Ingest accepts ContactEvents at any tick —
// frontier appends, late adds into already-sealed slabs, retractions
// (privacy deletes / bad-data corrections). Out-of-order events land in
// per-slab delta logs (segment.Log) whose overlay networks the planner
// consults instead of the stale sealed index, so answers are exact
// immediately; Compact (or the Options.CompactEvents threshold) re-seals
// dirty slabs through the same build machinery. AddInstant remains as a
// thin position-join wrapper over the event path.
//
// Appends cost O(one instant) amortized (plus one slab-sized index build
// each SegmentTicks instants); queries are lock-free after taking a
// consistent view. One goroutine may append while any number query.

package streach

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"streach/internal/contact"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/segment"
	"streach/internal/shard"
	"streach/internal/stjoin"
)

// LiveEngine is an Engine over a live position feed. It satisfies Engine
// (and Segmented) like every registry backend, but its time domain grows
// with each AddInstant; queries are evaluated against every instant
// ingested before the query took its view.
type LiveEngine struct {
	name       string
	base       string
	numObjects int
	joiner     *stjoin.Joiner
	log        *segment.Log[frontierCore]

	// pool is the buffer pool the sealed disk-resident segments share;
	// nil for memory-resident bases.
	pool *BufferPool

	// horizon bounds how far past the frontier an add may land (-1 means
	// unbounded); compactEvents is the per-slab delta depth that triggers
	// an automatic re-seal (0 means manual Compact only).
	horizon       int
	compactEvents int

	// bidir routes point queries through the bidirectional planner
	// (engine opened as "bidir:<base>"); parallelism is the worker budget
	// for large frontier sweeps (Options.QueryParallelism).
	bidir       bool
	parallelism int

	// evScratch is AddInstant's reusable event buffer (single appender).
	evScratch []contact.Event

	// Sharding state ("shard:<K>:" name prefix, hash partitioner only —
	// spatial needs trajectories the live feed does not carry). With K > 1
	// lanes[s] is shard s's own segment log: events route to the lane of
	// each endpoint's owner (cross-shard contacts to both), so sealing and
	// compaction stay per-shard, and queries run the scatter-gather
	// relaxation over per-lane views. log aliases lanes[0]; lanes is nil
	// for unsharded engines (shards is still set when "shard:1:" was asked
	// for, so Stats reports the declared count). laneEvs/laneSecEvs are the
	// appender's routing buffers: primary-lane batches (owner of endpoint
	// A) carry the report counts, secondary batches only the duplicated
	// cross-shard side.
	shards     int
	assign     *shard.Assignment
	lanes      []*segment.Log[frontierCore]
	lanePools  []*BufferPool
	laneEvs    [][]contact.Event
	laneSecEvs [][]contact.Event

	// crossFrontier counts boundary objects queries handed across the
	// shard cut; crossContacts/totalContacts/laneContacts count the routed
	// contact adds (the live cross_shard_ratio numerator/denominator).
	crossFrontier atomic.Int64
	crossContacts atomic.Int64
	totalContacts atomic.Int64
	laneContacts  []atomic.Int64

	// ingestHook and sealHook are the notification hooks of OnIngest and
	// OnSegmentSeal. They are invoked synchronously from Ingest/AddInstant
	// (the appender goroutine); registration must happen before the first
	// append.
	ingestHook func(iv Interval)
	sealHook   func(span Interval)
}

// ContactEvent is one observation from a contact feed: objects A and B
// were within contact range at tick Tick — or, with Retract set, that
// earlier observation is withdrawn. Events may arrive in any tick order;
// LiveEngine.Ingest is their entry point.
type ContactEvent struct {
	Tick    Tick
	A, B    ObjectID
	Retract bool
}

// IngestReport summarizes what one Ingest batch did.
type IngestReport struct {
	// Applied counts contact instants applied at (or beyond) the frontier;
	// Late counts instants applied behind it, into the tail overlay or a
	// sealed segment's delta log.
	Applied int
	Late    int
	// Retracted counts removed contact instants; Duplicates counts adds of
	// already-present instants; RetractMisses counts retractions that
	// matched nothing (both are dropped, not errors — feeds repeat).
	Retracted     int
	Duplicates    int
	RetractMisses int
	// Sealed lists the global tick spans of segments sealed by the batch;
	// Compacted counts dirty segments re-sealed by the Options.CompactEvents
	// threshold policy.
	Sealed    []Interval
	Compacted int
}

// ErrBadEvent reports a structurally invalid contact event (object out of
// range, self-contact, negative tick). Ingest validates the whole batch
// before applying anything, so a batch rejected with ErrBadEvent left the
// engine untouched.
var ErrBadEvent = errors.New("streach: bad contact event")

// ErrIngestHorizon reports an add whose tick lies at or beyond
// frontier + Options.IngestHorizon. Like ErrBadEvent it is raised during
// pre-validation: the batch is rejected whole.
var ErrIngestHorizon = errors.New("streach: event tick beyond ingest horizon")

// ErrNotLiveCapable reports a backend that cannot seal live segments: only
// contact-sourced backends with frontier entry points (reachgraph,
// reachgraph-mem, oracle) can.
var ErrNotLiveCapable = errors.New("streach: backend cannot serve a live feed")

// NewLiveEngine returns a live engine for numObjects objects moving in env
// with contact threshold contactDist. Sealed slabs are indexed with the
// named base backend, which must open from a contact network and support
// the segmented planner ("reachgraph", "reachgraph-mem" or "oracle");
// Options.SegmentTicks sets the slab width and disk-resident segments
// share one buffer pool (Options.Pool or a private one). A "bidir:"
// prefix on the backend name ("bidir:reachgraph", ...) routes point
// queries through the bidirectional planner, exactly as for the frozen
// "bidir:*" registry backends; the base must then be reverse-capable.
//
// A "shard:<K>:" prefix ("shard:4:reachgraph", "shard:2:bidir:reachgraph")
// hash-partitions the object population into K ingest lanes, each with its
// own segment log, buffer pool (unless Options.Pool is shared) and
// per-shard sealing/compaction; queries run the scatter-gather frontier
// relaxation over the lanes. Only the hash partitioner is live-capable —
// spatial partitioning snaps trajectories the feed does not carry.
func NewLiveEngine(backend string, numObjects int, env Rect, contactDist float64, opts Options) (*LiveEngine, error) {
	backend = strings.TrimSpace(backend)
	shards := 0
	if k, partitioner, rest, ok := parseShardName(strings.ToLower(backend)); ok {
		if partitioner != "hash" {
			return nil, fmt.Errorf("live shard:%s: %w (spatial partitioning snaps trajectories; live shards are hash-partitioned)",
				partitioner, ErrNotLiveCapable)
		}
		if k > numObjects {
			return nil, fmt.Errorf("streach: %d live shards exceed %d objects", k, numObjects)
		}
		shards, backend = k, rest
	}
	bidir := strings.HasPrefix(strings.ToLower(backend), "bidir:")
	if bidir {
		backend = backend[len("bidir:"):]
	}
	spec, ok := lookupSpec(backend)
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownBackend, backend, joinLiveCapable())
	}
	if spec.info.NeedsTrajectories {
		return nil, fmt.Errorf("live %q: %w (indexes trajectories)", spec.info.Name, ErrNotLiveCapable)
	}
	if numObjects <= 0 {
		return nil, errors.New("streach: live engine needs at least one object")
	}
	if contactDist <= 0 {
		return nil, errors.New("streach: contact threshold must be positive")
	}
	makeBuild := func(laneOpts Options) segment.BuildFunc[frontierCore] {
		return func(span Interval, net *contact.Network) (frontierCore, error) {
			core, err := spec.open(&ContactNetwork{net: net}, laneOpts)
			if err != nil {
				return nil, err
			}
			fc, ok := core.(frontierCore)
			if !ok {
				return nil, fmt.Errorf("live %q: %w (no frontier entry points)", spec.info.Name, ErrNotLiveCapable)
			}
			return fc, nil
		}
	}
	slabOpts := withSharedSlabPool(opts, spec.info.DiskResident)
	build := makeBuild(slabOpts)
	// Probe seal-ability now, not at the first slab boundary: a one-tick
	// empty network must build.
	probe, err := build(NewInterval(0, 0), contact.FromContacts(numObjects, 1, nil))
	if err != nil {
		return nil, err
	}
	if _, ok := probe.(reverseFrontierCore); bidir && !ok {
		return nil, fmt.Errorf("live bidir:%s: %w (no reverse frontier entry points)", spec.info.Name, ErrNotLiveCapable)
	}
	horizon := opts.IngestHorizon
	switch {
	case horizon == 0:
		horizon = 4 * segment.Width(opts.SegmentTicks)
	case horizon < 0:
		horizon = -1
	}
	innerName := spec.info.Name
	if bidir {
		innerName = "bidir:" + spec.info.Name
	}
	name := "live:" + innerName
	if shards > 0 {
		name = fmt.Sprintf("live:shard:%d:%s", shards, innerName)
	}
	le := &LiveEngine{
		name:          name,
		base:          spec.info.Name,
		numObjects:    numObjects,
		joiner:        stjoin.NewJoiner(env, contactDist),
		log:           segment.NewLog[frontierCore](numObjects, opts.SegmentTicks, build),
		pool:          slabOpts.Pool,
		horizon:       horizon,
		compactEvents: max(opts.CompactEvents, 0),
		bidir:         bidir,
		parallelism:   opts.QueryParallelism,
		shards:        shards,
	}
	if shards > 1 {
		// K ingest lanes, lane 0 aliasing the primary log. Each lane gets a
		// private buffer pool via its own slab options unless the caller
		// shared Options.Pool (then every lane draws on that one and Stats
		// reports it pool-wide, exactly like unsharded engines).
		assign, err := shard.Hash(numObjects, shards)
		if err != nil {
			return nil, err
		}
		le.assign = assign
		le.lanes = make([]*segment.Log[frontierCore], shards)
		le.lanePools = make([]*BufferPool, shards)
		le.laneEvs = make([][]contact.Event, shards)
		le.laneSecEvs = make([][]contact.Event, shards)
		le.laneContacts = make([]atomic.Int64, shards)
		le.lanes[0] = le.log
		le.lanePools[0] = slabOpts.Pool
		for s := 1; s < shards; s++ {
			laneOpts := withSharedSlabPool(opts, spec.info.DiskResident)
			le.lanes[s] = segment.NewLog[frontierCore](numObjects, opts.SegmentTicks, makeBuild(laneOpts))
			le.lanePools[s] = laneOpts.Pool
		}
		if opts.Pool == nil {
			// Per-lane private pools: no single pool speaks for the engine;
			// Stats sums the lane pools instead.
			le.pool = nil
		}
	}
	return le, nil
}

// OnIngest registers fn to be invoked synchronously after every ingest
// that changes contact content, once per contiguous interval of changed
// ticks — a frontier append reports the new instant [t, t]; a late add or
// retraction reports the historical ticks it patched. A serving layer uses
// it to invalidate derived state (query caches) overlapping the interval.
// Register before the first append; the hook runs on the appender
// goroutine and must not ingest itself.
func (le *LiveEngine) OnIngest(fn func(iv Interval)) { le.ingestHook = fn }

// OnSegmentSeal registers fn to be invoked synchronously whenever an
// append closes the current time slab and seals it into an immutable
// index segment, with the sealed slab's global tick span. Register before
// the first AddInstant; the hook runs on the appender goroutine, after
// the seal is published (a query issued from inside the hook already sees
// the sealed segment).
func (le *LiveEngine) OnSegmentSeal(fn func(span Interval)) { le.sealHook = fn }

func joinLiveCapable() string {
	return "oracle, reachgraph, reachgraph-mem"
}

// Ingest folds a batch of contact events into the feed — the primary
// ingest surface. Events may target any tick: adds at the frontier extend
// the time domain (padding any gap with empty instants, sealing slabs as
// widths close), adds behind it land in the tail overlay or a sealed
// segment's delta log, and retractions remove previously ingested contact
// instants. Answers reflect the batch exactly as soon as Ingest returns —
// no compaction is needed for correctness.
//
// The whole batch is validated before anything is applied: a structurally
// invalid event (ErrBadEvent) or an add past the ingest horizon
// (ErrIngestHorizon) rejects the batch with the engine untouched. A seal
// or compaction build error can still leave the batch partially applied;
// the report states what was applied and the engine stays consistent.
// Like AddInstant, calls must come from a single goroutine.
func (le *LiveEngine) Ingest(events []ContactEvent) (IngestReport, error) {
	frontier := le.log.NumTicks()
	for i, ev := range events {
		switch {
		case ev.A < 0 || int(ev.A) >= le.numObjects || ev.B < 0 || int(ev.B) >= le.numObjects:
			return IngestReport{}, fmt.Errorf("%w: event %d: object out of range [0, %d)",
				ErrBadEvent, i, le.numObjects)
		case ev.A == ev.B:
			return IngestReport{}, fmt.Errorf("%w: event %d: self-contact of object %d",
				ErrBadEvent, i, ev.A)
		case ev.Tick < 0:
			return IngestReport{}, fmt.Errorf("%w: event %d: negative tick %d",
				ErrBadEvent, i, ev.Tick)
		case !ev.Retract && le.horizon >= 0 && int(ev.Tick) >= frontier+le.horizon:
			return IngestReport{}, fmt.Errorf("%w: event %d: tick %d vs frontier %d (horizon %d)",
				ErrIngestHorizon, i, ev.Tick, frontier, le.horizon)
		}
	}
	if le.lanes != nil {
		for s := range le.lanes {
			le.laneEvs[s] = le.laneEvs[s][:0]
			le.laneSecEvs[s] = le.laneSecEvs[s][:0]
		}
		for _, ev := range events {
			le.routeEvent(contact.Event{Tick: ev.Tick, A: ev.A, B: ev.B, Retract: ev.Retract})
		}
		return le.applyLanes()
	}
	evs := make([]contact.Event, len(events))
	for i, ev := range events {
		evs[i] = contact.Event{Tick: ev.Tick, A: ev.A, B: ev.B, Retract: ev.Retract}
	}
	res, err := le.log.IngestEvents(evs, le.compactEvents)
	le.fireHooks(res)
	return IngestReport{
		Applied:       res.Frontier,
		Late:          res.Late,
		Retracted:     res.Retracted,
		Duplicates:    res.Duplicates,
		RetractMisses: res.RetractMisses,
		Sealed:        res.Sealed,
		Compacted:     res.Compacted,
	}, err
}

// routeEvent appends e to its owner lanes' routing buffers: owner(A)'s
// primary batch carries the report counts, and when the endpoints live on
// different shards the duplicated copy lands in owner(B)'s secondary batch,
// so both shard sub-networks stay complete for their own objects. Adds also
// feed the live partition-quality counters.
func (le *LiveEngine) routeEvent(e contact.Event) {
	sa, sb := le.assign.Owner(e.A), le.assign.Owner(e.B)
	le.laneEvs[sa] = append(le.laneEvs[sa], e)
	if sb != sa {
		le.laneSecEvs[sb] = append(le.laneSecEvs[sb], e)
	}
	if !e.Retract {
		le.totalContacts.Add(1)
		le.laneContacts[sa].Add(1)
		if sb != sa {
			le.crossContacts.Add(1)
			le.laneContacts[sb].Add(1)
		}
	}
}

// applyLanes folds the routed batches into every lane and re-aligns the
// lane clocks to the common frontier, so a shard whose objects were quiet
// still covers the ticks its peers ingested. Per-event report counts come
// from the primary batches alone (a cross-shard event is one event, however
// many lanes store it); Compacted sums over lanes, and Sealed — with the
// seal hook — reports lane 0's spans, identical across lanes once aligned.
func (le *LiveEngine) applyLanes() (IngestReport, error) {
	var rep IngestReport
	var firstErr error
	for s, lg := range le.lanes {
		if len(le.laneEvs[s]) > 0 {
			res, err := lg.IngestEvents(le.laneEvs[s], le.compactEvents)
			le.countLane(s, res, &rep, true)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if len(le.laneSecEvs[s]) > 0 {
			res, err := lg.IngestEvents(le.laneSecEvs[s], le.compactEvents)
			le.countLane(s, res, &rep, false)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	frontier := 0
	for _, lg := range le.lanes {
		if n := lg.NumTicks(); n > frontier {
			frontier = n
		}
	}
	for s, lg := range le.lanes {
		if lg.NumTicks() >= frontier {
			continue
		}
		res, err := lg.AdvanceTo(frontier)
		le.countLane(s, res, &rep, false)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return rep, firstErr
}

// countLane accumulates one lane apply into the batch report and fires the
// hooks for it. The ingest hook fires per lane — an invalidation heard once
// per shard that changed is idempotent for derived state; the seal hook
// fires from lane 0 only, whose slab boundaries speak for all lanes.
func (le *LiveEngine) countLane(s int, res segment.ApplyResult, rep *IngestReport, primary bool) {
	if primary {
		rep.Applied += res.Frontier
		rep.Late += res.Late
		rep.Retracted += res.Retracted
		rep.Duplicates += res.Duplicates
		rep.RetractMisses += res.RetractMisses
	}
	rep.Compacted += res.Compacted
	if s == 0 {
		rep.Sealed = append(rep.Sealed, res.Sealed...)
	}
	if le.ingestHook != nil {
		for _, iv := range res.Changed {
			le.ingestHook(iv)
		}
	}
	if s == 0 && le.sealHook != nil {
		for _, span := range res.Sealed {
			le.sealHook(span)
		}
	}
}

// AddInstant ingests the next instant of the feed; positions[i] is object
// i's position. It is a thin position-join wrapper over the event path:
// the joined pairs become frontier ContactEvents (a pair-less instant
// still advances the clock). Appends must come from a single goroutine;
// queries may run concurrently. When the append closes the current slab,
// the slab is sealed into an immutable index segment before AddInstant
// returns.
func (le *LiveEngine) AddInstant(positions []Point) error {
	if len(positions) != le.numObjects {
		return fmt.Errorf("streach: got %d positions, want %d", len(positions), le.numObjects)
	}
	tick := Tick(le.log.NumTicks())
	le.evScratch = le.evScratch[:0]
	le.joiner.Join(positions, func(a, b int) bool {
		le.evScratch = append(le.evScratch, contact.Event{Tick: tick, A: ObjectID(a), B: ObjectID(b)})
		return true
	})
	if le.lanes != nil {
		if len(le.evScratch) == 0 {
			return le.advanceLanes(int(tick) + 1)
		}
		for s := range le.lanes {
			le.laneEvs[s] = le.laneEvs[s][:0]
			le.laneSecEvs[s] = le.laneSecEvs[s][:0]
		}
		for _, e := range le.evScratch {
			le.routeEvent(e)
		}
		_, err := le.applyLanes()
		return err
	}
	var res segment.ApplyResult
	var err error
	if len(le.evScratch) == 0 {
		res, err = le.log.AdvanceTo(int(tick) + 1)
	} else {
		res, err = le.log.IngestEvents(le.evScratch, 0)
	}
	le.fireHooks(res)
	return err
}

// advanceLanes pads every lane to numTicks ticks, firing hooks per lane.
func (le *LiveEngine) advanceLanes(numTicks int) error {
	var rep IngestReport
	var firstErr error
	for s, lg := range le.lanes {
		res, err := lg.AdvanceTo(numTicks)
		le.countLane(s, res, &rep, false)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AdvanceTo pads the feed with empty instants until tick is part of the
// time domain — the clock half of ingestion, decoupled from contact
// arrival so a quiet feed still moves the frontier (and with it the
// ingest horizon). Already-covered ticks are a no-op; the clock never
// rewinds. Single appender goroutine, like all ingestion.
func (le *LiveEngine) AdvanceTo(tick Tick) error {
	if le.lanes != nil {
		return le.advanceLanes(int(tick) + 1)
	}
	res, err := le.log.AdvanceTo(int(tick) + 1)
	le.fireHooks(res)
	return err
}

// Compact re-seals every sealed segment carrying pending delta-log events,
// folding the corrections into fresh immutable index segments built
// through the base backend; the delta logs reset to empty. Query answers
// are unchanged — compaction trades the overlay's oracle evaluation for
// the base backend's indexed one. Returns the number of segments rebuilt.
// Runs on the appender goroutine; queries may run concurrently and keep
// their (still-exact) views.
func (le *LiveEngine) Compact() (int, error) {
	if le.lanes != nil {
		total := 0
		var firstErr error
		for _, lg := range le.lanes {
			n, err := lg.Compact()
			total += n
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return total, firstErr
	}
	return le.log.Compact()
}

// ContactActiveAt reports whether contact (a, b) is part of the feed's
// current effective state at tick t — ingested (directly or late) and not
// retracted. A serving layer uses it to pre-validate wire retractions.
func (le *LiveEngine) ContactActiveAt(a, b ObjectID, t Tick) bool {
	if le.lanes != nil {
		// Owner(a)'s lane holds every contact incident to a, including the
		// duplicated cross-shard copies.
		return le.lanes[le.assign.Owner(a)].ActiveAt(a, b, t)
	}
	return le.log.ActiveAt(a, b, t)
}

// fireHooks reports an ingest outcome to the registered hooks. Hooks fire
// even when the ingest ultimately erred: everything listed in res was
// genuinely applied, so derived state must still hear about it.
func (le *LiveEngine) fireHooks(res segment.ApplyResult) {
	if le.ingestHook != nil {
		for _, iv := range res.Changed {
			le.ingestHook(iv)
		}
	}
	if le.sealHook != nil {
		for _, span := range res.Sealed {
			le.sealHook(span)
		}
	}
}

// NumTicks returns the number of instants ingested so far.
func (le *LiveEngine) NumTicks() int { return le.log.NumTicks() }

// NumSealedSegments returns the number of sealed (immutable) segments.
func (le *LiveEngine) NumSealedSegments() int { return le.log.NumSealed() }

// Snapshot returns the contact network over every instant ingested so far
// — the same network a ContactStream would snapshot — for validation
// against ground truth. The engine remains usable.
func (le *LiveEngine) Snapshot() *ContactNetwork {
	return &ContactNetwork{net: le.snapshotNet()}
}

func (le *LiveEngine) snapshotNet() *contact.Network {
	if le.lanes == nil {
		return le.log.Snapshot()
	}
	// Merge the lane snapshots back into the whole-population network,
	// deduplicating the cross-shard contacts the cut stored twice.
	nets := make([]*contact.Network, len(le.lanes))
	numTicks := 0
	for s, lg := range le.lanes {
		nets[s] = lg.Snapshot()
		if nets[s].NumTicks > numTicks {
			numTicks = nets[s].NumTicks
		}
	}
	return shard.Merge(nets, le.numObjects, numTicks)
}

// view assembles the planner's slab list: sealed segments plus, when the
// tail holds instants, an oracle core over the tail's slab-local network.
// A dirty sealed segment — one with pending delta-log events — is served
// by an oracle over its overlay network instead of its (stale) sealed
// index, so out-of-order corrections are query-visible immediately.
// Everything returned is immutable, so the query proceeds lock-free.
func (le *LiveEngine) view() ([]segSlab, int) {
	return logView(le.log)
}

func logView(lg *segment.Log[frontierCore]) ([]segSlab, int) {
	sealed, tailSpan, tailNet, numTicks := lg.View()
	slabs := make([]segSlab, 0, len(sealed)+1)
	for _, s := range sealed {
		core := s.Value
		if s.Overlay != nil {
			core = oracleCore{o: queries.NewOracle(s.Overlay)}
		}
		slabs = append(slabs, segSlab{span: s.Span, core: core})
	}
	if tailNet != nil {
		slabs = append(slabs, segSlab{span: tailSpan, core: oracleCore{o: queries.NewOracle(tailNet)}})
	}
	return slabs, numTicks
}

// laneSemView is one shard lane's scatter-gather entry point: a semCore
// over a pinned view of the lane's log, evaluated through the
// cross-segment planner. Expansions are clamped by the coordinator to the
// common time domain, so a lane mid-append never leaks ticks its peers
// have not covered yet.
type laneSemView struct {
	slabs      []segSlab
	numObjects int
	numTicks   int
}

func (v laneSemView) semSupports(spec semSpec) bool {
	for _, s := range v.slabs {
		sc, ok := s.core.(semCore)
		if !ok || !sc.semSupports(spec) {
			return false
		}
	}
	return true
}

func (v laneSemView) semProfile(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	return planSemProfile(ctx, v.slabs, v.numObjects, v.numTicks, dst, seeds, iv, spec, earlyDst, acct)
}

// shardParts pins one consistent view per lane and returns them as the
// scatter-gather planner's parts, with the common time domain — the
// minimum lane frontier, so queries racing an append see only ticks every
// lane has covered.
func (le *LiveEngine) shardParts() ([]semCore, int) {
	parts := make([]semCore, len(le.lanes))
	numTicks := -1
	for s, lg := range le.lanes {
		slabs, nt := logView(lg)
		parts[s] = laneSemView{slabs: slabs, numObjects: le.numObjects, numTicks: nt}
		if numTicks < 0 || nt < numTicks {
			numTicks = nt
		}
	}
	return parts, max(numTicks, 0)
}

func (le *LiveEngine) shardPar() int {
	if le.parallelism > 0 {
		return le.parallelism
	}
	return len(le.lanes)
}

// Name returns "live:<base>".
func (le *LiveEngine) Name() string { return le.name }

// Reachable answers q over every instant ingested before the call took its
// view of the log. Queries with an active Semantics spec route through the
// semantics layer like every registry engine.
func (le *LiveEngine) Reachable(ctx context.Context, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if q.Semantics.Active() {
		return evalReachableSem(ctx, le.semView(), q)
	}
	if le.lanes != nil {
		return le.reachableSharded(ctx, q)
	}
	slabs, numTicks := le.view()
	var acct pagefile.Stats
	start := time.Now()
	var ok bool
	var expanded int
	var err error
	if le.bidir {
		ok, expanded, err = planReachBidir(ctx, slabs, le.numObjects, numTicks, q, le.parallelism, &acct)
	} else {
		ok, expanded, err = planReach(ctx, slabs, le.numObjects, numTicks, q, le.parallelism, &acct)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		Query:     q,
		Reachable: ok,
		IO:        statsOf(acct),
		Latency:   time.Since(start),
		Expanded:  expanded,
		Evaluated: true,
		Arrival:   -1,
		Hops:      -1,
		Native:    true,
	}, nil
}

// ReachableSet returns every object reachable from src during iv, sorted
// ascending and deduplicated.
func (le *LiveEngine) ReachableSet(ctx context.Context, src ObjectID, iv Interval) (SetResult, error) {
	if err := ctx.Err(); err != nil {
		return SetResult{}, err
	}
	if le.lanes != nil {
		return le.reachableSetSharded(ctx, src, iv)
	}
	slabs, numTicks := le.view()
	var acct pagefile.Stats
	start := time.Now()
	objs, _, err := planSet(ctx, slabs, le.numObjects, numTicks, src, iv, le.parallelism, &acct)
	if err != nil {
		return SetResult{}, err
	}
	objs = sortDedupObjects(objs)
	return SetResult{
		Src:      src,
		Interval: iv,
		Objects:  objs,
		IO:       statsOf(acct),
		Latency:  time.Since(start),
		Expanded: len(objs),
	}, nil
}

// reachableSharded answers a plain point query over the ingest lanes with
// the scatter-gather frontier relaxation — the same planner as the frozen
// shard backends, with q.Dst as the early-exit target. A sharded live
// engine routes every point query here (including "bidir:" bases: the
// bidirectional planner needs the undivided network, which no single lane
// holds).
func (le *LiveEngine) reachableSharded(ctx context.Context, q Query) (Result, error) {
	parts, numTicks := le.shardParts()
	if err := validatePlanIDs(le.numObjects, q.Src, q.Dst); err != nil {
		return Result{}, err
	}
	start := time.Now()
	res := Result{
		Query:     q,
		Evaluated: true,
		Arrival:   -1,
		Hops:      -1,
		Native:    true,
	}
	iv := clampDomain(q.Interval, numTicks)
	switch {
	case numTicks == 0 || iv.Len() == 0:
	case q.Src == q.Dst:
		res.Reachable = true
	default:
		sc := semPool.Get()
		defer semPool.Put(sc)
		sc.seeds = append(sc.seeds[:0], queries.SeedState{Obj: q.Src})
		var acct pagefile.Stats
		entries, n, err := planShardProfile(ctx, parts, le.assign, le.numObjects, numTicks,
			sc.entries[:0], sc.seeds, iv, hopAgnostic, q.Dst, le.shardPar(), &acct, &le.crossFrontier)
		sc.entries = entries
		if err != nil {
			return Result{}, err
		}
		_, res.Reachable = findEntry(entries, q.Dst)
		res.IO = statsOf(acct)
		res.Expanded = n
	}
	res.Latency = time.Since(start)
	return res, nil
}

// reachableSetSharded computes the reachable set over the ingest lanes with
// one exhaustive scatter-gather relaxation (no early exit).
func (le *LiveEngine) reachableSetSharded(ctx context.Context, src ObjectID, iv Interval) (SetResult, error) {
	parts, numTicks := le.shardParts()
	if err := validatePlanIDs(le.numObjects, src, src); err != nil {
		return SetResult{}, err
	}
	sc := semPool.Get()
	defer semPool.Put(sc)
	sc.seeds = append(sc.seeds[:0], queries.SeedState{Obj: src})
	var acct pagefile.Stats
	start := time.Now()
	entries, _, err := planShardProfile(ctx, parts, le.assign, le.numObjects, numTicks,
		sc.entries[:0], sc.seeds, iv, hopAgnostic, queries.NoObject, le.shardPar(), &acct, &le.crossFrontier)
	sc.entries = entries
	if err != nil {
		return SetResult{}, err
	}
	objs := make([]ObjectID, len(entries))
	for i, en := range entries {
		objs[i] = en.Obj
	}
	return SetResult{
		Src:      src,
		Interval: iv,
		Objects:  objs,
		IO:       statsOf(acct),
		Latency:  time.Since(start),
		Expanded: len(objs),
	}, nil
}

// liveSemView is the per-query semEvaluator of a LiveEngine: it pins one
// consistent view of the log so a semantic query evaluates against a
// fixed set of ingested instants. Evaluation goes through the
// cross-segment planner when every slab of the view supports the spec
// (the tail's oracle core always does), and through a brute-force oracle
// over a fresh feed snapshot otherwise — the snapshot may include
// instants ingested after the view was taken; answers remain exact for
// every instant of the view.
type liveSemView struct {
	le       *LiveEngine
	slabs    []segSlab
	numTicks int
}

func (le *LiveEngine) semView() semEvaluator {
	if le.lanes != nil {
		parts, numTicks := le.shardParts()
		return &liveShardSemView{le: le, parts: parts, numTicks: numTicks}
	}
	slabs, numTicks := le.view()
	return &liveSemView{le: le, slabs: slabs, numTicks: numTicks}
}

// liveShardSemView is the semEvaluator of a sharded LiveEngine: pinned
// per-lane views evaluated through the scatter-gather relaxation. Like the
// frozen shard backends it is native exactly for hop-agnostic specs every
// lane supports; hop-tracking specs (and any slab that cannot serve the
// spec) fall back to a brute-force oracle over a merged feed snapshot.
type liveShardSemView struct {
	le       *LiveEngine
	parts    []semCore
	numTicks int
}

func (v *liveShardSemView) semDims() (int, int) { return v.le.numObjects, v.numTicks }

func (v *liveShardSemView) semNativeFor(spec semSpec) bool {
	if spec.tracksHops() {
		return false
	}
	for _, p := range v.parts {
		if !p.semSupports(spec) {
			return false
		}
	}
	return true
}

func (v *liveShardSemView) semEvaluate(ctx context.Context, sc *semScratch, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, bool, error) {
	if v.semNativeFor(spec) {
		entries, n, err := planShardProfile(ctx, v.parts, v.le.assign, v.le.numObjects, v.numTicks,
			sc.entries[:0], seeds, iv, spec, earlyDst, v.le.shardPar(), acct, &v.le.crossFrontier)
		sc.entries = entries
		return entries, n, true, err
	}
	entries, n := queries.NewOracle(v.le.snapshotNet()).Filtered(spec.filter).ProfileFrom(seeds, iv, spec.budget, earlyDst)
	return entries, n, false, nil
}

func (v *liveShardSemView) semOracle() *queries.Oracle {
	return queries.NewOracle(v.le.snapshotNet())
}

func (v *liveSemView) semDims() (int, int) { return v.le.numObjects, v.numTicks }

func (v *liveSemView) semNativeFor(spec semSpec) bool {
	for _, s := range v.slabs {
		sc, ok := s.core.(semCore)
		if !ok || !sc.semSupports(spec) {
			return false
		}
	}
	return true
}

func (v *liveSemView) semEvaluate(ctx context.Context, sc *semScratch, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, bool, error) {
	if v.semNativeFor(spec) {
		entries, n, err := planSemProfile(ctx, v.slabs, v.le.numObjects, v.numTicks, sc.entries[:0], seeds, iv, spec, earlyDst, acct)
		sc.entries = entries
		return entries, n, true, err
	}
	entries, n := queries.NewOracle(v.le.snapshotNet()).Filtered(spec.filter).ProfileFrom(seeds, iv, spec.budget, earlyDst)
	return entries, n, false, nil
}

func (v *liveSemView) semOracle() *queries.Oracle {
	return queries.NewOracle(v.le.snapshotNet())
}

// EarliestArrival returns the first ingested tick in iv at which dst
// holds an item initiated by src, over every instant ingested before the
// call took its view of the log. Arrival ticks carry across sealed-slab
// frontiers through the cross-segment planner; bases without a native
// arrival sweep fall back to an oracle over a fresh snapshot (all current
// live-capable bases are arrival-native).
func (le *LiveEngine) EarliestArrival(ctx context.Context, src, dst ObjectID, iv Interval) (ArrivalResult, error) {
	return evalEarliestArrival(ctx, le.semView(), src, dst, iv)
}

// TopKReachable ranks the objects reachable from src during iv under
// per-transfer decay; see Engine.TopKReachable. Transfer counting needs
// per-instant relaxation, so bases whose sealed segments cannot count
// hops (reachgraph, reachgraph-mem) answer through an oracle over a
// fresh snapshot of the ingested feed.
func (le *LiveEngine) TopKReachable(ctx context.Context, src ObjectID, iv Interval, k int, decay float64) (TopKResult, error) {
	return evalTopKReachable(ctx, le.semView(), src, iv, k, decay)
}

// IndexBytes returns the total on-disk size of the sealed segments (zero
// for memory-resident bases and before the first seal). Dirty segments
// still count: the sealed index exists on disk until compaction replaces
// it.
func (le *LiveEngine) IndexBytes() int64 {
	var sum int64
	for _, lg := range le.allLogs() {
		sealed, _, _, _ := lg.View()
		for _, s := range sealed {
			sum += s.Value.indexBytes()
		}
	}
	return sum
}

// allLogs returns the engine's segment logs: the ingest lanes of a sharded
// engine, or the single log otherwise.
func (le *LiveEngine) allLogs() []*segment.Log[frontierCore] {
	if le.lanes != nil {
		return le.lanes
	}
	return []*segment.Log[frontierCore]{le.log}
}

// IOTotals returns the cumulative simulated disk traffic of the sealed
// segments.
func (le *LiveEngine) IOTotals() IOStats {
	var sum pagefile.Stats
	for _, lg := range le.allLogs() {
		sealed, _, _, _ := lg.View()
		for _, s := range sealed {
			sum.Add(s.Value.ioTotals())
		}
	}
	return statsOf(sum)
}

// Stats returns a consistent snapshot of the live engine's observable
// state; see Engine.Stats. NumTicks and the segment counts reflect the
// instants ingested before the snapshot, and may lag an ongoing append by
// at most one instant. DeltaEvents/DirtySegments expose the current
// delta-log pressure; LateEvents/Retractions/Compactions are cumulative.
func (le *LiveEngine) Stats() EngineStats {
	sealed, _, tailNet, numTicks := le.log.View()
	segments := len(sealed)
	if tailNet != nil {
		segments++
	}
	st := EngineStats{
		Backend:        le.name,
		NumObjects:     le.numObjects,
		NumTicks:       numTicks,
		Segments:       segments,
		SealedSegments: len(sealed),
	}
	// Sharded engines sum the per-lane footprints and ingest counters; the
	// counters count lane applications, so a cross-shard event stored on
	// both sides counts once per side, like ShardStats.Contacts. Segment
	// counts come from lane 0, whose slab boundaries speak for all lanes.
	var io pagefile.Stats
	for _, lg := range le.allLogs() {
		laneSealed, _, _, _ := lg.View()
		for _, s := range laneSealed {
			io.Add(s.Value.ioTotals())
			st.IndexBytes += s.Value.indexBytes()
			st.DeltaEvents += s.Pending
			if s.Pending > 0 {
				st.DirtySegments++
			}
		}
		c := lg.Counters()
		st.LateEvents += c.LateApplied
		st.Retractions += c.Retractions
		st.Compactions += c.Compactions
	}
	st.IO = statsOf(io)
	if le.pool != nil {
		st.HasPool = true
		st.Pool = le.pool.Stats()
	} else {
		// Per-lane private pools: report their summed counters, the same
		// convention as the frozen shard backends.
		for _, p := range le.lanePools {
			if p == nil {
				continue
			}
			ps := p.Stats()
			st.HasPool = true
			st.Pool.Hits += ps.Hits
			st.Pool.Misses += ps.Misses
			st.Pool.Evictions += ps.Evictions
			st.Pool.Resident += ps.Resident
			st.Pool.Capacity += ps.Capacity
		}
	}
	if le.shards > 0 {
		st.Shards = le.shards
		st.Partitioner = "hash"
		st.CrossShardFrontier = le.crossFrontier.Load()
		if total := le.totalContacts.Load(); total > 0 {
			st.CrossShardRatio = float64(le.crossContacts.Load()) / float64(total)
		}
		st.ShardDetails = le.ShardStats()
	}
	return st
}

// ShardStats returns one entry per ingest lane; nil for engines opened
// without a "shard:<K>:" prefix (or with K = 1, which keeps the single
// unsharded log). Contacts counts the contact adds routed to the lane so
// far — cross-shard contacts once per side.
func (le *LiveEngine) ShardStats() []ShardStats {
	if le.lanes == nil {
		return nil
	}
	out := make([]ShardStats, len(le.lanes))
	for s, lg := range le.lanes {
		sealed, _, _, _ := lg.View()
		st := ShardStats{
			Shard:    s,
			Objects:  le.assign.Objects(s),
			Contacts: int(le.laneContacts[s].Load()),
		}
		var io pagefile.Stats
		for _, sv := range sealed {
			io.Add(sv.Value.ioTotals())
			st.IndexBytes += sv.Value.indexBytes()
		}
		st.IO = statsOf(io)
		out[s] = st
	}
	return out
}

// SegmentStats returns one entry per segment — sealed segments first, then
// the mutable tail (which never charges I/O) when it holds instants. A
// sealed segment's DeltaEvents is its pending delta-log depth.
func (le *LiveEngine) SegmentStats() []SegmentStats {
	sealed, tailSpan, tailNet, _ := le.log.View()
	out := make([]SegmentStats, 0, len(sealed)+1)
	io := make([]pagefile.Stats, len(sealed))
	for i, s := range sealed {
		io[i] = s.Value.ioTotals()
		out = append(out, SegmentStats{
			Span:        s.Span,
			IndexBytes:  s.Value.indexBytes(),
			DeltaEvents: s.Pending,
		})
	}
	// Lanes 1..K-1 seal the same slab spans as lane 0 (the appender keeps
	// the clocks aligned); fold their per-slab footprints in by index so an
	// entry stays "one time slab, summed across shards".
	if le.lanes != nil {
		for _, lg := range le.lanes[1:] {
			laneSealed, _, _, _ := lg.View()
			for i, s := range laneSealed {
				if i >= len(out) {
					break
				}
				io[i].Add(s.Value.ioTotals())
				out[i].IndexBytes += s.Value.indexBytes()
				out[i].DeltaEvents += s.Pending
			}
		}
	}
	for i := range out {
		out[i].IO = statsOf(io[i])
	}
	if tailNet != nil {
		out = append(out, SegmentStats{Span: tailSpan})
	}
	return out
}

var _ Engine = (*LiveEngine)(nil)
var _ Segmented = (*LiveEngine)(nil)
var _ Sharded = (*LiveEngine)(nil)
