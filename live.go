// LiveEngine: a query engine over a live position feed, queryable while
// ingesting. This is the streaming completion of the segmented
// architecture — where "segmented:<name>" slices a frozen dataset,
// LiveEngine grows the slices as the feed arrives:
//
//	tail    — appends land in one mutable in-memory segment (an
//	          incremental contact builder over the current time slab only);
//	sealed  — when the tail's slab closes it is flushed through the base
//	          backend's builder into an immutable index segment;
//	query   — the cross-segment planner walks sealed segments plus a
//	          snapshot of the tail, so answers always cover every ingested
//	          instant with no rebuild of historical slabs, ever.
//
// Real feeds are late, duplicated and occasionally wrong, so ingestion is
// event-based underneath: Ingest accepts ContactEvents at any tick —
// frontier appends, late adds into already-sealed slabs, retractions
// (privacy deletes / bad-data corrections). Out-of-order events land in
// per-slab delta logs (segment.Log) whose overlay networks the planner
// consults instead of the stale sealed index, so answers are exact
// immediately; Compact (or the Options.CompactEvents threshold) re-seals
// dirty slabs through the same build machinery. AddInstant remains as a
// thin position-join wrapper over the event path.
//
// Appends cost O(one instant) amortized (plus one slab-sized index build
// each SegmentTicks instants); queries are lock-free after taking a
// consistent view. One goroutine may append while any number query.

package streach

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"streach/internal/contact"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/segment"
	"streach/internal/stjoin"
)

// LiveEngine is an Engine over a live position feed. It satisfies Engine
// (and Segmented) like every registry backend, but its time domain grows
// with each AddInstant; queries are evaluated against every instant
// ingested before the query took its view.
type LiveEngine struct {
	name       string
	base       string
	numObjects int
	joiner     *stjoin.Joiner
	log        *segment.Log[frontierCore]

	// pool is the buffer pool the sealed disk-resident segments share;
	// nil for memory-resident bases.
	pool *BufferPool

	// horizon bounds how far past the frontier an add may land (-1 means
	// unbounded); compactEvents is the per-slab delta depth that triggers
	// an automatic re-seal (0 means manual Compact only).
	horizon       int
	compactEvents int

	// bidir routes point queries through the bidirectional planner
	// (engine opened as "bidir:<base>"); parallelism is the worker budget
	// for large frontier sweeps (Options.QueryParallelism).
	bidir       bool
	parallelism int

	// evScratch is AddInstant's reusable event buffer (single appender).
	evScratch []contact.Event

	// ingestHook and sealHook are the notification hooks of OnIngest and
	// OnSegmentSeal. They are invoked synchronously from Ingest/AddInstant
	// (the appender goroutine); registration must happen before the first
	// append.
	ingestHook func(iv Interval)
	sealHook   func(span Interval)
}

// ContactEvent is one observation from a contact feed: objects A and B
// were within contact range at tick Tick — or, with Retract set, that
// earlier observation is withdrawn. Events may arrive in any tick order;
// LiveEngine.Ingest is their entry point.
type ContactEvent struct {
	Tick    Tick
	A, B    ObjectID
	Retract bool
}

// IngestReport summarizes what one Ingest batch did.
type IngestReport struct {
	// Applied counts contact instants applied at (or beyond) the frontier;
	// Late counts instants applied behind it, into the tail overlay or a
	// sealed segment's delta log.
	Applied int
	Late    int
	// Retracted counts removed contact instants; Duplicates counts adds of
	// already-present instants; RetractMisses counts retractions that
	// matched nothing (both are dropped, not errors — feeds repeat).
	Retracted     int
	Duplicates    int
	RetractMisses int
	// Sealed lists the global tick spans of segments sealed by the batch;
	// Compacted counts dirty segments re-sealed by the Options.CompactEvents
	// threshold policy.
	Sealed    []Interval
	Compacted int
}

// ErrBadEvent reports a structurally invalid contact event (object out of
// range, self-contact, negative tick). Ingest validates the whole batch
// before applying anything, so a batch rejected with ErrBadEvent left the
// engine untouched.
var ErrBadEvent = errors.New("streach: bad contact event")

// ErrIngestHorizon reports an add whose tick lies at or beyond
// frontier + Options.IngestHorizon. Like ErrBadEvent it is raised during
// pre-validation: the batch is rejected whole.
var ErrIngestHorizon = errors.New("streach: event tick beyond ingest horizon")

// ErrNotLiveCapable reports a backend that cannot seal live segments: only
// contact-sourced backends with frontier entry points (reachgraph,
// reachgraph-mem, oracle) can.
var ErrNotLiveCapable = errors.New("streach: backend cannot serve a live feed")

// NewLiveEngine returns a live engine for numObjects objects moving in env
// with contact threshold contactDist. Sealed slabs are indexed with the
// named base backend, which must open from a contact network and support
// the segmented planner ("reachgraph", "reachgraph-mem" or "oracle");
// Options.SegmentTicks sets the slab width and disk-resident segments
// share one buffer pool (Options.Pool or a private one). A "bidir:"
// prefix on the backend name ("bidir:reachgraph", ...) routes point
// queries through the bidirectional planner, exactly as for the frozen
// "bidir:*" registry backends; the base must then be reverse-capable.
func NewLiveEngine(backend string, numObjects int, env Rect, contactDist float64, opts Options) (*LiveEngine, error) {
	bidir := strings.HasPrefix(strings.ToLower(strings.TrimSpace(backend)), "bidir:")
	if bidir {
		backend = strings.TrimSpace(backend)[len("bidir:"):]
	}
	spec, ok := lookupSpec(backend)
	if !ok {
		return nil, fmt.Errorf("%w %q (available: %s)",
			ErrUnknownBackend, backend, joinLiveCapable())
	}
	if spec.info.NeedsTrajectories {
		return nil, fmt.Errorf("live %q: %w (indexes trajectories)", spec.info.Name, ErrNotLiveCapable)
	}
	if numObjects <= 0 {
		return nil, errors.New("streach: live engine needs at least one object")
	}
	if contactDist <= 0 {
		return nil, errors.New("streach: contact threshold must be positive")
	}
	slabOpts := withSharedSlabPool(opts, spec.info.DiskResident)
	build := func(span Interval, net *contact.Network) (frontierCore, error) {
		core, err := spec.open(&ContactNetwork{net: net}, slabOpts)
		if err != nil {
			return nil, err
		}
		fc, ok := core.(frontierCore)
		if !ok {
			return nil, fmt.Errorf("live %q: %w (no frontier entry points)", spec.info.Name, ErrNotLiveCapable)
		}
		return fc, nil
	}
	// Probe seal-ability now, not at the first slab boundary: a one-tick
	// empty network must build.
	probe, err := build(NewInterval(0, 0), contact.FromContacts(numObjects, 1, nil))
	if err != nil {
		return nil, err
	}
	if _, ok := probe.(reverseFrontierCore); bidir && !ok {
		return nil, fmt.Errorf("live bidir:%s: %w (no reverse frontier entry points)", spec.info.Name, ErrNotLiveCapable)
	}
	horizon := opts.IngestHorizon
	switch {
	case horizon == 0:
		horizon = 4 * segment.Width(opts.SegmentTicks)
	case horizon < 0:
		horizon = -1
	}
	name := "live:" + spec.info.Name
	if bidir {
		name = "live:bidir:" + spec.info.Name
	}
	return &LiveEngine{
		name:          name,
		base:          spec.info.Name,
		numObjects:    numObjects,
		joiner:        stjoin.NewJoiner(env, contactDist),
		log:           segment.NewLog[frontierCore](numObjects, opts.SegmentTicks, build),
		pool:          slabOpts.Pool,
		horizon:       horizon,
		compactEvents: max(opts.CompactEvents, 0),
		bidir:         bidir,
		parallelism:   opts.QueryParallelism,
	}, nil
}

// OnIngest registers fn to be invoked synchronously after every ingest
// that changes contact content, once per contiguous interval of changed
// ticks — a frontier append reports the new instant [t, t]; a late add or
// retraction reports the historical ticks it patched. A serving layer uses
// it to invalidate derived state (query caches) overlapping the interval.
// Register before the first append; the hook runs on the appender
// goroutine and must not ingest itself.
func (le *LiveEngine) OnIngest(fn func(iv Interval)) { le.ingestHook = fn }

// OnSegmentSeal registers fn to be invoked synchronously whenever an
// append closes the current time slab and seals it into an immutable
// index segment, with the sealed slab's global tick span. Register before
// the first AddInstant; the hook runs on the appender goroutine, after
// the seal is published (a query issued from inside the hook already sees
// the sealed segment).
func (le *LiveEngine) OnSegmentSeal(fn func(span Interval)) { le.sealHook = fn }

func joinLiveCapable() string {
	return "oracle, reachgraph, reachgraph-mem"
}

// Ingest folds a batch of contact events into the feed — the primary
// ingest surface. Events may target any tick: adds at the frontier extend
// the time domain (padding any gap with empty instants, sealing slabs as
// widths close), adds behind it land in the tail overlay or a sealed
// segment's delta log, and retractions remove previously ingested contact
// instants. Answers reflect the batch exactly as soon as Ingest returns —
// no compaction is needed for correctness.
//
// The whole batch is validated before anything is applied: a structurally
// invalid event (ErrBadEvent) or an add past the ingest horizon
// (ErrIngestHorizon) rejects the batch with the engine untouched. A seal
// or compaction build error can still leave the batch partially applied;
// the report states what was applied and the engine stays consistent.
// Like AddInstant, calls must come from a single goroutine.
func (le *LiveEngine) Ingest(events []ContactEvent) (IngestReport, error) {
	frontier := le.log.NumTicks()
	for i, ev := range events {
		switch {
		case ev.A < 0 || int(ev.A) >= le.numObjects || ev.B < 0 || int(ev.B) >= le.numObjects:
			return IngestReport{}, fmt.Errorf("%w: event %d: object out of range [0, %d)",
				ErrBadEvent, i, le.numObjects)
		case ev.A == ev.B:
			return IngestReport{}, fmt.Errorf("%w: event %d: self-contact of object %d",
				ErrBadEvent, i, ev.A)
		case ev.Tick < 0:
			return IngestReport{}, fmt.Errorf("%w: event %d: negative tick %d",
				ErrBadEvent, i, ev.Tick)
		case !ev.Retract && le.horizon >= 0 && int(ev.Tick) >= frontier+le.horizon:
			return IngestReport{}, fmt.Errorf("%w: event %d: tick %d vs frontier %d (horizon %d)",
				ErrIngestHorizon, i, ev.Tick, frontier, le.horizon)
		}
	}
	evs := make([]contact.Event, len(events))
	for i, ev := range events {
		evs[i] = contact.Event{Tick: ev.Tick, A: ev.A, B: ev.B, Retract: ev.Retract}
	}
	res, err := le.log.IngestEvents(evs, le.compactEvents)
	le.fireHooks(res)
	return IngestReport{
		Applied:       res.Frontier,
		Late:          res.Late,
		Retracted:     res.Retracted,
		Duplicates:    res.Duplicates,
		RetractMisses: res.RetractMisses,
		Sealed:        res.Sealed,
		Compacted:     res.Compacted,
	}, err
}

// AddInstant ingests the next instant of the feed; positions[i] is object
// i's position. It is a thin position-join wrapper over the event path:
// the joined pairs become frontier ContactEvents (a pair-less instant
// still advances the clock). Appends must come from a single goroutine;
// queries may run concurrently. When the append closes the current slab,
// the slab is sealed into an immutable index segment before AddInstant
// returns.
func (le *LiveEngine) AddInstant(positions []Point) error {
	if len(positions) != le.numObjects {
		return fmt.Errorf("streach: got %d positions, want %d", len(positions), le.numObjects)
	}
	tick := Tick(le.log.NumTicks())
	le.evScratch = le.evScratch[:0]
	le.joiner.Join(positions, func(a, b int) bool {
		le.evScratch = append(le.evScratch, contact.Event{Tick: tick, A: ObjectID(a), B: ObjectID(b)})
		return true
	})
	var res segment.ApplyResult
	var err error
	if len(le.evScratch) == 0 {
		res, err = le.log.AdvanceTo(int(tick) + 1)
	} else {
		res, err = le.log.IngestEvents(le.evScratch, 0)
	}
	le.fireHooks(res)
	return err
}

// AdvanceTo pads the feed with empty instants until tick is part of the
// time domain — the clock half of ingestion, decoupled from contact
// arrival so a quiet feed still moves the frontier (and with it the
// ingest horizon). Already-covered ticks are a no-op; the clock never
// rewinds. Single appender goroutine, like all ingestion.
func (le *LiveEngine) AdvanceTo(tick Tick) error {
	res, err := le.log.AdvanceTo(int(tick) + 1)
	le.fireHooks(res)
	return err
}

// Compact re-seals every sealed segment carrying pending delta-log events,
// folding the corrections into fresh immutable index segments built
// through the base backend; the delta logs reset to empty. Query answers
// are unchanged — compaction trades the overlay's oracle evaluation for
// the base backend's indexed one. Returns the number of segments rebuilt.
// Runs on the appender goroutine; queries may run concurrently and keep
// their (still-exact) views.
func (le *LiveEngine) Compact() (int, error) {
	return le.log.Compact()
}

// ContactActiveAt reports whether contact (a, b) is part of the feed's
// current effective state at tick t — ingested (directly or late) and not
// retracted. A serving layer uses it to pre-validate wire retractions.
func (le *LiveEngine) ContactActiveAt(a, b ObjectID, t Tick) bool {
	return le.log.ActiveAt(a, b, t)
}

// fireHooks reports an ingest outcome to the registered hooks. Hooks fire
// even when the ingest ultimately erred: everything listed in res was
// genuinely applied, so derived state must still hear about it.
func (le *LiveEngine) fireHooks(res segment.ApplyResult) {
	if le.ingestHook != nil {
		for _, iv := range res.Changed {
			le.ingestHook(iv)
		}
	}
	if le.sealHook != nil {
		for _, span := range res.Sealed {
			le.sealHook(span)
		}
	}
}

// NumTicks returns the number of instants ingested so far.
func (le *LiveEngine) NumTicks() int { return le.log.NumTicks() }

// NumSealedSegments returns the number of sealed (immutable) segments.
func (le *LiveEngine) NumSealedSegments() int { return le.log.NumSealed() }

// Snapshot returns the contact network over every instant ingested so far
// — the same network a ContactStream would snapshot — for validation
// against ground truth. The engine remains usable.
func (le *LiveEngine) Snapshot() *ContactNetwork {
	return &ContactNetwork{net: le.log.Snapshot()}
}

// view assembles the planner's slab list: sealed segments plus, when the
// tail holds instants, an oracle core over the tail's slab-local network.
// A dirty sealed segment — one with pending delta-log events — is served
// by an oracle over its overlay network instead of its (stale) sealed
// index, so out-of-order corrections are query-visible immediately.
// Everything returned is immutable, so the query proceeds lock-free.
func (le *LiveEngine) view() ([]segSlab, int) {
	sealed, tailSpan, tailNet, numTicks := le.log.View()
	slabs := make([]segSlab, 0, len(sealed)+1)
	for _, s := range sealed {
		core := s.Value
		if s.Overlay != nil {
			core = oracleCore{o: queries.NewOracle(s.Overlay)}
		}
		slabs = append(slabs, segSlab{span: s.Span, core: core})
	}
	if tailNet != nil {
		slabs = append(slabs, segSlab{span: tailSpan, core: oracleCore{o: queries.NewOracle(tailNet)}})
	}
	return slabs, numTicks
}

// Name returns "live:<base>".
func (le *LiveEngine) Name() string { return le.name }

// Reachable answers q over every instant ingested before the call took its
// view of the log. Queries with an active Semantics spec route through the
// semantics layer like every registry engine.
func (le *LiveEngine) Reachable(ctx context.Context, q Query) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if q.Semantics.Active() {
		return evalReachableSem(ctx, le.semView(), q)
	}
	slabs, numTicks := le.view()
	var acct pagefile.Stats
	start := time.Now()
	var ok bool
	var expanded int
	var err error
	if le.bidir {
		ok, expanded, err = planReachBidir(ctx, slabs, le.numObjects, numTicks, q, le.parallelism, &acct)
	} else {
		ok, expanded, err = planReach(ctx, slabs, le.numObjects, numTicks, q, le.parallelism, &acct)
	}
	if err != nil {
		return Result{}, err
	}
	return Result{
		Query:     q,
		Reachable: ok,
		IO:        statsOf(acct),
		Latency:   time.Since(start),
		Expanded:  expanded,
		Evaluated: true,
		Arrival:   -1,
		Hops:      -1,
		Native:    true,
	}, nil
}

// ReachableSet returns every object reachable from src during iv, sorted
// ascending and deduplicated.
func (le *LiveEngine) ReachableSet(ctx context.Context, src ObjectID, iv Interval) (SetResult, error) {
	if err := ctx.Err(); err != nil {
		return SetResult{}, err
	}
	slabs, numTicks := le.view()
	var acct pagefile.Stats
	start := time.Now()
	objs, _, err := planSet(ctx, slabs, le.numObjects, numTicks, src, iv, le.parallelism, &acct)
	if err != nil {
		return SetResult{}, err
	}
	objs = sortDedupObjects(objs)
	return SetResult{
		Src:      src,
		Interval: iv,
		Objects:  objs,
		IO:       statsOf(acct),
		Latency:  time.Since(start),
		Expanded: len(objs),
	}, nil
}

// liveSemView is the per-query semEvaluator of a LiveEngine: it pins one
// consistent view of the log so a semantic query evaluates against a
// fixed set of ingested instants. Evaluation goes through the
// cross-segment planner when every slab of the view supports the spec
// (the tail's oracle core always does), and through a brute-force oracle
// over a fresh feed snapshot otherwise — the snapshot may include
// instants ingested after the view was taken; answers remain exact for
// every instant of the view.
type liveSemView struct {
	le       *LiveEngine
	slabs    []segSlab
	numTicks int
}

func (le *LiveEngine) semView() *liveSemView {
	slabs, numTicks := le.view()
	return &liveSemView{le: le, slabs: slabs, numTicks: numTicks}
}

func (v *liveSemView) semDims() (int, int) { return v.le.numObjects, v.numTicks }

func (v *liveSemView) semNativeFor(spec semSpec) bool {
	for _, s := range v.slabs {
		sc, ok := s.core.(semCore)
		if !ok || !sc.semSupports(spec) {
			return false
		}
	}
	return true
}

func (v *liveSemView) semEvaluate(ctx context.Context, sc *semScratch, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, bool, error) {
	if v.semNativeFor(spec) {
		entries, n, err := planSemProfile(ctx, v.slabs, v.le.numObjects, v.numTicks, sc.entries[:0], seeds, iv, spec, earlyDst, acct)
		sc.entries = entries
		return entries, n, true, err
	}
	entries, n := queries.NewOracle(v.le.log.Snapshot()).ProfileFrom(seeds, iv, spec.budget, earlyDst)
	return entries, n, false, nil
}

// EarliestArrival returns the first ingested tick in iv at which dst
// holds an item initiated by src, over every instant ingested before the
// call took its view of the log. Arrival ticks carry across sealed-slab
// frontiers through the cross-segment planner; bases without a native
// arrival sweep fall back to an oracle over a fresh snapshot (all current
// live-capable bases are arrival-native).
func (le *LiveEngine) EarliestArrival(ctx context.Context, src, dst ObjectID, iv Interval) (ArrivalResult, error) {
	return evalEarliestArrival(ctx, le.semView(), src, dst, iv)
}

// TopKReachable ranks the objects reachable from src during iv under
// per-transfer decay; see Engine.TopKReachable. Transfer counting needs
// per-instant relaxation, so bases whose sealed segments cannot count
// hops (reachgraph, reachgraph-mem) answer through an oracle over a
// fresh snapshot of the ingested feed.
func (le *LiveEngine) TopKReachable(ctx context.Context, src ObjectID, iv Interval, k int, decay float64) (TopKResult, error) {
	return evalTopKReachable(ctx, le.semView(), src, iv, k, decay)
}

// IndexBytes returns the total on-disk size of the sealed segments (zero
// for memory-resident bases and before the first seal). Dirty segments
// still count: the sealed index exists on disk until compaction replaces
// it.
func (le *LiveEngine) IndexBytes() int64 {
	sealed, _, _, _ := le.log.View()
	var sum int64
	for _, s := range sealed {
		sum += s.Value.indexBytes()
	}
	return sum
}

// IOTotals returns the cumulative simulated disk traffic of the sealed
// segments.
func (le *LiveEngine) IOTotals() IOStats {
	sealed, _, _, _ := le.log.View()
	var sum pagefile.Stats
	for _, s := range sealed {
		sum.Add(s.Value.ioTotals())
	}
	return statsOf(sum)
}

// Stats returns a consistent snapshot of the live engine's observable
// state; see Engine.Stats. NumTicks and the segment counts reflect the
// instants ingested before the snapshot, and may lag an ongoing append by
// at most one instant. DeltaEvents/DirtySegments expose the current
// delta-log pressure; LateEvents/Retractions/Compactions are cumulative.
func (le *LiveEngine) Stats() EngineStats {
	sealed, _, tailNet, numTicks := le.log.View()
	segments := len(sealed)
	if tailNet != nil {
		segments++
	}
	st := EngineStats{
		Backend:        le.name,
		NumObjects:     le.numObjects,
		NumTicks:       numTicks,
		Segments:       segments,
		SealedSegments: len(sealed),
	}
	var io pagefile.Stats
	for _, s := range sealed {
		io.Add(s.Value.ioTotals())
		st.IndexBytes += s.Value.indexBytes()
		st.DeltaEvents += s.Pending
		if s.Pending > 0 {
			st.DirtySegments++
		}
	}
	st.IO = statsOf(io)
	c := le.log.Counters()
	st.LateEvents = c.LateApplied
	st.Retractions = c.Retractions
	st.Compactions = c.Compactions
	if le.pool != nil {
		st.HasPool = true
		st.Pool = le.pool.Stats()
	}
	return st
}

// SegmentStats returns one entry per segment — sealed segments first, then
// the mutable tail (which never charges I/O) when it holds instants. A
// sealed segment's DeltaEvents is its pending delta-log depth.
func (le *LiveEngine) SegmentStats() []SegmentStats {
	sealed, tailSpan, tailNet, _ := le.log.View()
	out := make([]SegmentStats, 0, len(sealed)+1)
	for _, s := range sealed {
		out = append(out, SegmentStats{
			Span:        s.Span,
			IO:          statsOf(s.Value.ioTotals()),
			IndexBytes:  s.Value.indexBytes(),
			DeltaEvents: s.Pending,
		})
	}
	if tailNet != nil {
		out = append(out, SegmentStats{Span: tailSpan})
	}
	return out
}

var _ Engine = (*LiveEngine)(nil)
var _ Segmented = (*LiveEngine)(nil)
