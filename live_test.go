package streach_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"streach"
)

// replaySource generates the deterministic "feed" the live tests replay.
func replaySource(t testing.TB, objects, ticks int) *streach.Dataset {
	t.Helper()
	return streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: objects, NumTicks: ticks, Seed: 203,
	})
}

func feedLive(t testing.TB, le *streach.LiveEngine, ds *streach.Dataset, upto int) {
	t.Helper()
	positions := make([]streach.Point, ds.NumObjects())
	for tk := le.NumTicks(); tk < upto; tk++ {
		for o := range positions {
			positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
		}
		if err := le.AddInstant(positions); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLiveEngineMatchesOracleAtCheckpoints replays a feed into LiveEngine
// and, at several checkpoints, asserts that every answer matches the
// ground-truth oracle over the engine's own snapshot — for every
// live-capable base backend, with no rebuild between appends (sealed
// segments only ever grow).
func TestLiveEngineMatchesOracleAtCheckpoints(t *testing.T) {
	ds := replaySource(t, 35, 360)
	ctx := context.Background()
	for _, base := range []string{"oracle", "reachgraph", "reachgraph-mem"} {
		le, err := streach.NewLiveEngine(base, ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{SegmentTicks: 64})
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		if le.Name() != "live:"+base {
			t.Errorf("Name = %q", le.Name())
		}
		prevSealed := 0
		for _, checkpoint := range []int{50, 130, 260, 360} {
			feedLive(t, le, ds, checkpoint)
			if got := le.NumTicks(); got != checkpoint {
				t.Fatalf("%s: NumTicks = %d, want %d", base, got, checkpoint)
			}
			if got := le.NumSealedSegments(); got < prevSealed {
				t.Fatalf("%s: sealed segments shrank %d -> %d", base, prevSealed, got)
			} else {
				prevSealed = got
			}
			oracle := le.Snapshot().Oracle()
			work := streach.RandomQueries(streach.WorkloadOptions{
				NumObjects: ds.NumObjects(), NumTicks: checkpoint,
				Count: 40, MinLen: 10, MaxLen: checkpoint, Seed: int64(checkpoint),
			})
			for _, q := range work {
				r, err := le.Reachable(ctx, q)
				if err != nil {
					t.Fatalf("%s %v: %v", base, q, err)
				}
				if want := oracle.Reachable(q); r.Reachable != want {
					t.Fatalf("%s disagrees with oracle on %v at tick %d: got %v, want %v",
						base, q, checkpoint, r.Reachable, want)
				}
				if !r.Evaluated {
					t.Fatalf("%s %v: not marked evaluated", base, q)
				}
			}
			for src := streach.ObjectID(0); src < 4; src++ {
				iv := streach.NewInterval(streach.Tick(10*src), streach.Tick(checkpoint-1))
				sr, err := le.ReachableSet(ctx, src, iv)
				if err != nil {
					t.Fatal(err)
				}
				want := oracle.ReachableSet(src, iv)
				sortIDs(want)
				if !equalIDs(sr.Objects, want) {
					t.Fatalf("%s set %d %v at tick %d: got %v, want %v",
						base, src, iv, checkpoint, sr.Objects, want)
				}
			}
		}
		if le.NumSealedSegments() != 360/64 {
			t.Errorf("%s: %d sealed segments after 360 ticks at width 64, want %d",
				base, le.NumSealedSegments(), 360/64)
		}
		if seg, ok := streach.Engine(le).(streach.Segmented); !ok {
			t.Errorf("%s: LiveEngine does not expose SegmentStats", base)
		} else if stats := seg.SegmentStats(); len(stats) == 0 {
			t.Errorf("%s: empty SegmentStats", base)
		}
	}
}

// TestLiveEngineQueryWhileIngesting runs readers concurrently with the
// appender across several seal boundaries (run under -race in CI). Queries
// over the already-complete prefix have stable answers — reachability over
// [lo, hi] depends only on the instants in [lo, hi] — so the readers check
// exact oracle equality while ingestion continues.
func TestLiveEngineQueryWhileIngesting(t *testing.T) {
	ds := replaySource(t, 25, 300)
	fullOracle := ds.Contacts().Oracle()
	le, err := streach.NewLiveEngine("reachgraph", ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{SegmentTicks: 32})
	if err != nil {
		t.Fatal(err)
	}
	const stablePrefix = 120
	feedLive(t, le, ds, stablePrefix) // several sealed slabs before readers start

	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: stablePrefix,
		Count: 200, MinLen: 10, MaxLen: stablePrefix, Seed: 7,
	})
	ctx := context.Background()
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i = (i + 7) % len(work) {
				q := work[i]
				r, err := le.Reachable(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				if want := fullOracle.Reachable(q); r.Reachable != want {
					t.Errorf("live answer for %v diverged mid-ingest: got %v, want %v",
						q, r.Reachable, want)
					return
				}
			}
		}(w)
	}
	// Keep appending across 300/32 ≈ 5 more seal boundaries while the
	// readers hammer the engine.
	feedLive(t, le, ds, 300)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := le.NumSealedSegments(); got != 300/32 {
		t.Errorf("%d sealed segments, want %d", got, 300/32)
	}
}

// TestContactStreamSnapshotThenContinue covers the snapshot-then-continue
// contract under concurrent readers (run under -race in CI): engines opened
// over a snapshot keep answering correctly while the stream ingests further
// instants and takes further snapshots.
func TestContactStreamSnapshotThenContinue(t *testing.T) {
	ds := replaySource(t, 25, 240)
	stream, err := streach.NewContactStream(ds.NumObjects(), ds.Env(), ds.ContactDist())
	if err != nil {
		t.Fatal(err)
	}
	positions := make([]streach.Point, ds.NumObjects())
	feed := func(upto int) {
		for tk := stream.NumTicks(); tk < upto; tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := stream.AddInstant(positions); err != nil {
				t.Fatal(err)
			}
		}
	}
	fullOracle := ds.Contacts().Oracle()
	ctx := context.Background()

	feed(120)
	snap := stream.Snapshot()
	e, err := streach.Open("reachgraph", snap, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: 120,
		Count: 150, MinLen: 10, MaxLen: 120, Seed: 13,
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(work); i += 4 {
				r, err := e.Reachable(ctx, work[i])
				if err != nil {
					t.Errorf("%v: %v", work[i], err)
					return
				}
				if want := fullOracle.Reachable(work[i]); r.Reachable != want {
					t.Errorf("snapshot engine wrong on %v", work[i])
					return
				}
			}
		}(w)
	}
	// The stream continues — and takes further snapshots — while readers
	// query the engine built over the first snapshot.
	feed(240)
	later := stream.Snapshot()
	wg.Wait()
	if later.NumTicks() != 240 || snap.NumTicks() != 120 {
		t.Fatalf("snapshots report %d and %d ticks, want 240 and 120", later.NumTicks(), snap.NumTicks())
	}
	// The later snapshot serves the full domain correctly.
	e2, err := streach.Open("reachgraph", later, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: 240,
		Count: 50, MinLen: 10, MaxLen: 240, Seed: 17,
	}) {
		r, err := e2.Reachable(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if want := fullOracle.Reachable(q); r.Reachable != want {
			t.Fatalf("second snapshot wrong on %v", q)
		}
	}
}

// TestLiveEngineRejectsUnfit pins the constructor's error surface.
func TestLiveEngineRejectsUnfit(t *testing.T) {
	env := streach.NewEnv(1000, 1000)
	if _, err := streach.NewLiveEngine("reachgrid", 10, env, 50, streach.Options{}); err == nil {
		t.Error("reachgrid (needs trajectories) must not open live")
	}
	if _, err := streach.NewLiveEngine("grail", 10, env, 50, streach.Options{}); err == nil {
		t.Error("grail (no frontier entry points) must not open live")
	}
	if _, err := streach.NewLiveEngine("nope", 10, env, 50, streach.Options{}); err == nil {
		t.Error("unknown backend must not open live")
	}
	if _, err := streach.NewLiveEngine("oracle", 0, env, 50, streach.Options{}); err == nil {
		t.Error("zero objects must not open live")
	}
	if _, err := streach.NewLiveEngine("oracle", 10, env, 0, streach.Options{}); err == nil {
		t.Error("zero contact distance must not open live")
	}
}
