package streach_test

import (
	"context"
	"runtime"
	"testing"

	"streach"
)

// TestParallelSweepRaceWithIngest drives large parallel-sweep queries
// through a live disk-resident engine while the appender seals and
// compacts segments (run under -race in CI). Two invariants are asserted:
// answers over the stable prefix match the ground truth throughout, and
// the per-worker I/O accountants merged into each query's delta sum to the
// shared buffer pool's counters exactly — nothing on the ingest side ever
// touches the pool's hit/miss counters (builds only write), so the pool
// delta must equal the reader's accumulated delta to the page.
func TestParallelSweepRaceWithIngest(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 256, NumTicks: 240, Seed: 99,
	})
	fullOracle := ds.Contacts().Oracle()
	pool := streach.NewBufferPool(96)
	le, err := streach.NewLiveEngine("bidir:reachgraph", ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{
		SegmentTicks:     24,
		QueryParallelism: runtime.GOMAXPROCS(0),
		Pool:             pool,
		CompactEvents:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const stablePrefix = 150
	feedLive(t, le, ds, stablePrefix+10)

	ctx := context.Background()
	// A full-prefix reachable set large enough that the carried frontier
	// crosses the parallel-sweep engagement threshold mid-plan.
	sr, err := le.ReachableSet(ctx, 0, streach.NewInterval(0, stablePrefix))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Objects) < 128 {
		t.Skipf("reachable set of %d objects never engages the parallel sweep", len(sr.Objects))
	}

	// Appender: seal the rest of the feed and keep dropping late contact
	// events behind the frontier — but beyond the stable prefix, so reader
	// answers over [0, stablePrefix] stay pinned — tripping the
	// CompactEvents threshold into concurrent compactions.
	done := make(chan error, 1)
	go func() {
		positions := make([]streach.Point, ds.NumObjects())
		for tk := le.NumTicks(); tk < 240; tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := le.AddInstant(positions); err != nil {
				done <- err
				return
			}
			late := streach.Tick(stablePrefix + 2 + tk%8)
			if _, err := le.Ingest([]streach.ContactEvent{
				{Tick: late, A: streach.ObjectID(tk % 200), B: streach.ObjectID(200 + tk%56)},
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// Single reader stream: every query's IO delta accumulates; with no
	// other pool reader, the sum must equal the pool counter movement.
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: stablePrefix,
		Count: 64, MinLen: stablePrefix / 2, MaxLen: stablePrefix, Seed: 41,
	})
	base := pool.Stats()
	var reads, hits int64
	appending := true
	for i := 0; appending || i < len(work); i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			appending = false
		default:
		}
		q := work[i%len(work)]
		r, err := le.Reachable(ctx, q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if want := fullOracle.Reachable(q); r.Reachable != want {
			t.Fatalf("answer for %v diverged mid-ingest: got %v, want %v", q, r.Reachable, want)
		}
		reads += r.IO.RandomReads + r.IO.SequentialReads
		hits += r.IO.BufferHits
	}
	ps := pool.Stats()
	if gotMisses := ps.Misses - base.Misses; gotMisses != reads {
		t.Errorf("query accountants saw %d pool misses, pool counted %d", reads, gotMisses)
	}
	if gotHits := ps.Hits - base.Hits; gotHits != hits {
		t.Errorf("query accountants saw %d pool hits, pool counted %d", hits, gotHits)
	}
	if le.Stats().Compactions == 0 {
		t.Error("no compaction ran during the race window")
	}
}
