// Permutation conformance of out-of-order ingestion: delivering the same
// synthetic contact-event set in tick order or in (constrained) random
// permutations — with retractions interleaved and compactions forced
// mid-stream — must be indistinguishable to every query kind at every
// delivery prefix. The only ordering a feed guarantees is causal: a
// retraction follows the add it withdraws; permutations respect exactly
// that partial order and nothing else.

package streach_test

import (
	"context"
	"math/rand"
	"testing"

	"streach"
	"streach/internal/contact"
	"streach/internal/stjoin"
)

// permScript is a contact-event set plus the partial-order constraint
// index: addOf[i] is the position (in events) of the add that retraction
// events[i] withdraws (-1 for adds).
type permScript struct {
	events []streach.ContactEvent
	addOf  []int
}

// genPermScript synthesizes ~pairsPerTick contacts per tick over
// [0, numTicks) and retracts retractFrac of them.
func genPermScript(rng *rand.Rand, numObjects, numTicks, pairsPerTick int, retractFrac float64) permScript {
	var s permScript
	for tk := 0; tk < numTicks; tk++ {
		for k := 0; k < pairsPerTick; k++ {
			a := streach.ObjectID(rng.Intn(numObjects))
			b := streach.ObjectID(rng.Intn(numObjects))
			if a == b {
				continue
			}
			add := streach.ContactEvent{Tick: streach.Tick(tk), A: a, B: b}
			s.events = append(s.events, add)
			s.addOf = append(s.addOf, -1)
			if rng.Float64() < retractFrac {
				ret := add
				ret.Retract = true
				s.events = append(s.events, ret)
				s.addOf = append(s.addOf, len(s.events)-2)
			}
		}
	}
	return s
}

// permute returns a delivery order of s respecting the causal constraint:
// every retraction lands after its add. Adds are shuffled freely; each
// retraction is then inserted at a uniform position after its add.
func permute(rng *rand.Rand, s permScript) []streach.ContactEvent {
	var order []int // positions into s.events, adds only
	for i, at := range s.addOf {
		if at == -1 {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	posOf := make(map[int]int, len(order)) // event index -> delivery slot
	out := make([]int, 0, len(s.events))
	for _, idx := range order {
		posOf[idx] = len(out)
		out = append(out, idx)
	}
	for i, at := range s.addOf {
		if at == -1 {
			continue
		}
		slot := posOf[at] + 1 + rng.Intn(len(out)-posOf[at])
		out = append(out, 0)
		copy(out[slot+1:], out[slot:])
		out[slot] = i
		for idx, p := range posOf {
			if p >= slot {
				posOf[idx] = p + 1
			}
		}
		posOf[i] = slot
	}
	events := make([]streach.ContactEvent, len(out))
	for i, idx := range out {
		events[i] = s.events[idx]
	}
	return events
}

// refState replays delivered events into per-tick membership and builds
// the in-order reference oracle over the resulting network.
type refState struct {
	numObjects int
	numTicks   int
	ticks      []map[stjoin.Pair]bool
}

func newRefState(numObjects int) *refState {
	return &refState{numObjects: numObjects}
}

func (r *refState) apply(ev streach.ContactEvent) {
	tk := int(ev.Tick)
	if ev.Retract {
		if tk < len(r.ticks) {
			delete(r.ticks[tk], stjoin.MakePair(ev.A, ev.B))
		}
		return
	}
	for len(r.ticks) <= tk {
		r.ticks = append(r.ticks, nil)
	}
	if r.ticks[tk] == nil {
		r.ticks[tk] = make(map[stjoin.Pair]bool)
	}
	r.ticks[tk][stjoin.MakePair(ev.A, ev.B)] = true
	if tk+1 > r.numTicks {
		r.numTicks = tk + 1
	}
}

func (r *refState) oracle(t *testing.T) streach.Engine {
	t.Helper()
	b := contact.NewBuilder(r.numObjects)
	var pairs []stjoin.Pair
	for tk := 0; tk < r.numTicks; tk++ {
		pairs = pairs[:0]
		if tk < len(r.ticks) {
			for pr := range r.ticks[tk] {
				pairs = append(pairs, pr)
			}
		}
		b.AddInstant(pairs)
	}
	eng, err := streach.Open("oracle", streach.WrapContactNetwork(b.Network()), streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// conformQuery is one fixed probe evaluated against both engines.
type conformQuery struct {
	src, dst streach.ObjectID
}

// assertConformant compares all four query kinds between the live engine
// and the in-order reference at the current prefix.
func assertConformant(t *testing.T, live *streach.LiveEngine, ref *refState, probes []conformQuery, label string) {
	t.Helper()
	if ref.numTicks == 0 {
		return
	}
	if got := live.NumTicks(); got != ref.numTicks {
		t.Fatalf("%s: live NumTicks %d, reference %d", label, got, ref.numTicks)
	}
	oracle := ref.oracle(t)
	ctx := context.Background()
	hi := streach.Tick(ref.numTicks - 1)
	intervals := []streach.Interval{
		streach.NewInterval(0, hi),
		streach.NewInterval(hi/2, hi),
		streach.NewInterval(hi/4, hi/2+1),
	}
	for _, iv := range intervals {
		for _, p := range probes {
			q := streach.Query{Src: p.src, Dst: p.dst, Interval: iv}
			gotR, err1 := live.Reachable(ctx, q)
			wantR, err2 := oracle.Reachable(ctx, q)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: Reachable%v errs %v / %v", label, q, err1, err2)
			}
			if gotR.Reachable != wantR.Reachable {
				t.Fatalf("%s: Reachable(%d->%d, %v) = %v, in-order oracle says %v",
					label, p.src, p.dst, iv, gotR.Reachable, wantR.Reachable)
			}

			gotA, err1 := live.EarliestArrival(ctx, p.src, p.dst, iv)
			wantA, err2 := oracle.EarliestArrival(ctx, p.src, p.dst, iv)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: EarliestArrival errs %v / %v", label, err1, err2)
			}
			if gotA.Reachable != wantA.Reachable || gotA.Arrival != wantA.Arrival {
				t.Fatalf("%s: EarliestArrival(%d->%d, %v) = (%v, %d), want (%v, %d)",
					label, p.src, p.dst, iv, gotA.Reachable, gotA.Arrival, wantA.Reachable, wantA.Arrival)
			}
		}
		// Set and top-k sweep from the probe sources only (dst-free kinds).
		for _, p := range probes[:len(probes)/2] {
			gotS, err1 := live.ReachableSet(ctx, p.src, iv)
			wantS, err2 := oracle.ReachableSet(ctx, p.src, iv)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: ReachableSet errs %v / %v", label, err1, err2)
			}
			if len(gotS.Objects) != len(wantS.Objects) {
				t.Fatalf("%s: ReachableSet(%d, %v) sizes %d vs %d",
					label, p.src, iv, len(gotS.Objects), len(wantS.Objects))
			}
			for i := range gotS.Objects {
				if gotS.Objects[i] != wantS.Objects[i] {
					t.Fatalf("%s: ReachableSet(%d, %v)[%d] = %d, want %d",
						label, p.src, iv, i, gotS.Objects[i], wantS.Objects[i])
				}
			}

			gotK, err1 := live.TopKReachable(ctx, p.src, iv, 4, 0.5)
			wantK, err2 := oracle.TopKReachable(ctx, p.src, iv, 4, 0.5)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: TopKReachable errs %v / %v", label, err1, err2)
			}
			if len(gotK.Items) != len(wantK.Items) {
				t.Fatalf("%s: TopK(%d, %v) sizes %d vs %d",
					label, p.src, iv, len(gotK.Items), len(wantK.Items))
			}
			for i := range gotK.Items {
				g, w := gotK.Items[i], wantK.Items[i]
				if g.Object != w.Object || g.Hops != w.Hops || g.Arrival != w.Arrival || g.Weight != w.Weight {
					t.Fatalf("%s: TopK(%d, %v)[%d] = %+v, want %+v", label, p.src, iv, i, g, w)
				}
			}
		}
	}
}

// TestPermutationConformance is the out-of-order ingestion property test:
// for every live-capable backend, a contact-event set delivered in tick
// order and in random causal permutations — with a Compact mid-stream —
// answers every query kind identically to the in-order oracle at every
// delivery prefix, while concurrent readers hammer the engine (the -race
// half of the contract).
func TestPermutationConformance(t *testing.T) {
	const (
		numObjects   = 16
		numTicks     = 96
		pairsPerTick = 3
		batch        = 40
	)
	rng := rand.New(rand.NewSource(7))
	script := genPermScript(rng, numObjects, numTicks, pairsPerTick, 0.15)

	probes := make([]conformQuery, 8)
	for i := range probes {
		probes[i] = conformQuery{
			src: streach.ObjectID(rng.Intn(numObjects)),
			dst: streach.ObjectID(rng.Intn(numObjects)),
		}
	}

	inOrder := append([]streach.ContactEvent(nil), script.events...)
	deliveries := [][]streach.ContactEvent{
		inOrder,
		permute(rng, script),
		permute(rng, script),
	}
	names := []string{"in-order", "perm-1", "perm-2"}

	for _, backend := range []string{"oracle", "reachgraph-mem", "reachgraph"} {
		for d, delivery := range deliveries {
			t.Run(backend+"/"+names[d], func(t *testing.T) {
				env := streach.NewEnv(1000, 1000)
				live, err := streach.NewLiveEngine(backend, numObjects, env, 50,
					streach.Options{SegmentTicks: 16, IngestHorizon: numTicks * 2})
				if err != nil {
					t.Fatal(err)
				}

				// Concurrent readers: correctness of their answers is the
				// main loop's job; here they must just never fail or race.
				stop := make(chan struct{})
				readerErr := make(chan error, 1)
				go func() {
					defer close(readerErr)
					ctx := context.Background()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if live.NumTicks() == 0 {
							continue
						}
						iv := streach.NewInterval(0, streach.Tick(live.NumTicks()-1))
						q := streach.Query{Src: probes[i%len(probes)].src, Dst: probes[i%len(probes)].dst, Interval: iv}
						if _, err := live.Reachable(ctx, q); err != nil {
							readerErr <- err
							return
						}
					}
				}()

				ref := newRefState(numObjects)
				for off := 0; off < len(delivery); off += batch {
					end := min(off+batch, len(delivery))
					if _, err := live.Ingest(delivery[off:end]); err != nil {
						t.Fatal(err)
					}
					for _, ev := range delivery[off:end] {
						ref.apply(ev)
					}
					assertConformant(t, live, ref, probes, names[d])
					if off/batch == 2 {
						if _, err := live.Compact(); err != nil {
							t.Fatal(err)
						}
						assertConformant(t, live, ref, probes, names[d]+"/post-compact")
					}
				}
				if _, err := live.Compact(); err != nil {
					t.Fatal(err)
				}
				if st := live.Stats(); st.DeltaEvents != 0 || st.DirtySegments != 0 {
					t.Fatalf("after final Compact: %d delta events on %d dirty segments",
						st.DeltaEvents, st.DirtySegments)
				}
				assertConformant(t, live, ref, probes, names[d]+"/final")

				close(stop)
				if err := <-readerErr; err != nil {
					t.Fatalf("concurrent reader: %v", err)
				}
			})
		}
	}
}

// TestIngestValidation pins the pre-validation contract: a structurally
// bad event or an add beyond the horizon rejects the whole batch with the
// engine untouched.
func TestIngestValidation(t *testing.T) {
	env := streach.NewEnv(1000, 1000)
	live, err := streach.NewLiveEngine("oracle", 8, env, 50,
		streach.Options{SegmentTicks: 8, IngestHorizon: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.Ingest([]streach.ContactEvent{{Tick: 0, A: 0, B: 1}}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		events []streach.ContactEvent
		want   error
	}{
		{"object out of range", []streach.ContactEvent{{Tick: 0, A: 0, B: 99}}, streach.ErrBadEvent},
		{"negative object", []streach.ContactEvent{{Tick: 0, A: -1, B: 1}}, streach.ErrBadEvent},
		{"self contact", []streach.ContactEvent{{Tick: 0, A: 3, B: 3}}, streach.ErrBadEvent},
		{"negative tick", []streach.ContactEvent{{Tick: -1, A: 0, B: 1}}, streach.ErrBadEvent},
		{"beyond horizon", []streach.ContactEvent{{Tick: 17, A: 0, B: 1}}, streach.ErrIngestHorizon},
		{"good then bad rejects whole batch",
			[]streach.ContactEvent{{Tick: 0, A: 2, B: 3}, {Tick: 400, A: 0, B: 1}}, streach.ErrIngestHorizon},
	}
	for _, tc := range cases {
		rep, err := live.Ingest(tc.events)
		if !errorsIs(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if rep.Applied != 0 || rep.Late != 0 || rep.Retracted != 0 || len(rep.Sealed) != 0 {
			t.Fatalf("%s: non-empty report %+v from rejected batch", tc.name, rep)
		}
	}
	if live.NumTicks() != 1 {
		t.Fatalf("rejected batches changed the domain: NumTicks = %d", live.NumTicks())
	}
	if !live.ContactActiveAt(0, 1, 0) || live.ContactActiveAt(2, 3, 0) {
		t.Fatal("rejected batch partially applied")
	}

	// A retraction is horizon-exempt (it can only ever miss out there) and
	// an unbounded horizon accepts any tick.
	if rep, err := live.Ingest([]streach.ContactEvent{{Tick: 1000, A: 0, B: 1, Retract: true}}); err != nil || rep.RetractMisses != 1 {
		t.Fatalf("future retraction: rep %+v err %v, want one miss", rep, err)
	}
	free, err := streach.NewLiveEngine("oracle", 8, env, 50,
		streach.Options{SegmentTicks: 8, IngestHorizon: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := free.Ingest([]streach.ContactEvent{{Tick: 500, A: 0, B: 1}}); err != nil || rep.Applied != 1 {
		t.Fatalf("unbounded horizon: rep %+v err %v", rep, err)
	}
	if free.NumTicks() != 501 {
		t.Fatalf("unbounded horizon NumTicks = %d, want 501", free.NumTicks())
	}
}

func errorsIs(err, target error) bool {
	for e := err; e != nil; {
		if e == target {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
