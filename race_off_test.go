//go:build !race

package streach_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
