//go:build race

package streach_test

// raceEnabled reports that the race detector instruments this build; timing
// assertions (batch speedup) are skipped because instrumentation distorts
// relative throughput.
const raceEnabled = true
