// Time-sliced index segments and the cross-segment query planner.
//
// A segmented backend ("segmented:<name>") splits the dataset's time axis
// into fixed-width slabs (Options.SegmentTicks) and builds one immutable
// index segment of the base backend per slab, all disk-resident segments
// drawing on one shared BufferPool. Queries are planned across segments:
// the planner walks only the slabs overlapping the query interval in time
// order, carrying the reachable frontier from slab to slab — the reachable
// set at the end of slab k becomes the multi-source seed set of slab k+1 —
// and short-circuits as soon as the destination is infected (or the
// context is cancelled). Correctness rests on the same per-instant
// propagation semantics the oracle executes: infection is monotone and
// memoryless across instants, so propagation over [t1, t2] factors exactly
// into propagation over consecutive sub-intervals with the frontier as the
// only carried state.
//
// The architecture exists for incremental ingestion (see LiveEngine): a
// new stretch of feed only ever adds segments, so historical slabs are
// never rebuilt.

package streach

import (
	"context"
	"fmt"
	"sort"

	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/segment"
	"streach/internal/visit"
)

// frontierCore is the multi-source surface of a segmentable backend: the
// usual point query generalized to a seed frontier, plus the native
// reachable-set primitive the planner uses to carry the frontier across
// slab boundaries. Implementations return sorted, deduplicated sets.
type frontierCore interface {
	engineCore
	// reachFrom answers "can an item held by any seed at iv.Lo reach dst
	// by iv.Hi?".
	reachFrom(ctx context.Context, seeds []ObjectID, dst ObjectID, iv Interval, acct *pagefile.Stats) (bool, int, error)
	// appendFrontier appends every object reachable from the seeds during
	// iv (seeds included when the interval overlaps the time domain) onto
	// dst and returns it. dst's backing array is reused — the planner
	// ping-pongs two pooled buffers across the slab walk instead of
	// materializing a fresh frontier slice per slab.
	appendFrontier(ctx context.Context, dst, seeds []ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, int, error)
}

// reverseFrontierCore is the backward surface of a bidir-capable backend:
// appendReverseFrontier appends the deliverer set of the seeds over iv —
// every object that, holding an item at iv.Lo, would deliver it to some
// seed by iv.Hi (seeds included when the interval overlaps the time
// domain) — onto dst and returns it, sorted and deduplicated. Like
// appendFrontier, dst's backing array is reused across the slab walk.
// Implemented by the backends with a native reverse traversal (reachgraph
// disk/mem walk DN1 in-edges in reverse time order; the oracle runs its
// time-mirrored propagation); ReachGrid's guided spatial expansion has no
// backward analogue, so bidirectional planning excludes it.
type reverseFrontierCore interface {
	frontierCore
	appendReverseFrontier(ctx context.Context, dst, seeds []ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, int, error)
}

func (c gridCore) reachFrom(ctx context.Context, seeds []ObjectID, dst ObjectID, iv Interval, acct *pagefile.Stats) (bool, int, error) {
	return c.ix.ReachFromCounted(ctx, seeds, dst, iv, acct)
}

func (c gridCore) appendFrontier(ctx context.Context, dst, seeds []ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, int, error) {
	return c.ix.AppendReachableSetFrom(ctx, dst, seeds, iv, acct)
}

func (c graphCore) reachFrom(ctx context.Context, seeds []ObjectID, dst ObjectID, iv Interval, acct *pagefile.Stats) (bool, int, error) {
	return c.ix.ReachFromCounted(ctx, seeds, dst, iv, c.strategy, acct)
}

func (c graphCore) appendFrontier(ctx context.Context, dst, seeds []ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, int, error) {
	return c.ix.AppendReachableSetFromCounted(ctx, dst, seeds, iv, acct)
}

func (c graphCore) appendReverseFrontier(ctx context.Context, dst, seeds []ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, int, error) {
	return c.ix.AppendReverseSetFromCounted(ctx, dst, seeds, iv, acct)
}

func (c graphMemCore) reachFrom(ctx context.Context, seeds []ObjectID, dst ObjectID, iv Interval, _ *pagefile.Stats) (bool, int, error) {
	return c.m.ReachFromCounted(ctx, seeds, dst, iv, BMBFS)
}

func (c graphMemCore) appendFrontier(ctx context.Context, dst, seeds []ObjectID, iv Interval, _ *pagefile.Stats) ([]ObjectID, int, error) {
	return c.m.AppendReachableSetFromCounted(ctx, dst, seeds, iv)
}

func (c graphMemCore) appendReverseFrontier(ctx context.Context, dst, seeds []ObjectID, iv Interval, _ *pagefile.Stats) ([]ObjectID, int, error) {
	return c.m.AppendReverseSetFromCounted(ctx, dst, seeds, iv)
}

func (c oracleCore) reachFrom(_ context.Context, seeds []ObjectID, dst ObjectID, iv Interval, _ *pagefile.Stats) (bool, int, error) {
	ok, expanded := c.o.ReachableFromCounted(seeds, dst, iv)
	return ok, expanded, nil
}

func (c oracleCore) appendFrontier(_ context.Context, dst, seeds []ObjectID, iv Interval, _ *pagefile.Stats) ([]ObjectID, int, error) {
	set := c.o.ReachableSetFrom(seeds, iv)
	return append(dst, set...), len(set), nil
}

func (c oracleCore) appendReverseFrontier(_ context.Context, dst, seeds []ObjectID, iv Interval, _ *pagefile.Stats) ([]ObjectID, int, error) {
	set := c.o.ReverseReachableSetFrom(seeds, iv)
	return append(dst, set...), len(set), nil
}

// segSlab is one sealed segment as the planner sees it: its global tick
// span plus the per-slab core evaluating slab-local queries.
type segSlab struct {
	span Interval
	core frontierCore
}

// planScratch holds the two frontier buffers a cross-segment walk
// ping-pongs between: the frontier of slab k is consumed from one buffer
// while slab k+1's is appended into the other, so a steady-state planner
// query re-materializes no frontier slices at all. Pooled package-wide —
// every segmented engine and LiveEngine query draws on the same pool.
type planScratch struct {
	a, b []ObjectID
}

var planPool = visit.NewPool(func() *planScratch { return new(planScratch) })

// planReach is the cross-segment point-query planner. slabs must be in
// ascending span order and tile the time domain prefix they cover; the
// planner touches only the slabs overlapping the query interval. It
// validates ids against numObjects and clamps the interval to
// [0, numTicks). par is the worker budget for large frontier sweeps
// (Options.QueryParallelism; <= 1 keeps every sweep serial).
func planReach(ctx context.Context, slabs []segSlab, numObjects, numTicks int, q Query, par int, acct *pagefile.Stats) (bool, int, error) {
	if err := validatePlanIDs(numObjects, q.Src, q.Dst); err != nil {
		return false, 0, err
	}
	iv := q.Interval.Intersect(Interval{Lo: 0, Hi: Tick(numTicks - 1)})
	if numTicks == 0 || iv.Len() == 0 {
		return false, 0, nil
	}
	if q.Src == q.Dst {
		return true, 0, nil
	}
	sc := planPool.Get()
	defer planPool.Put(sc)
	first, last := overlappingSlabs(slabs, iv)
	sc.a = append(sc.a[:0], q.Src)
	frontier := sc.a
	expanded := 0
	for i := first; i <= last; i++ {
		if err := ctx.Err(); err != nil {
			return false, expanded, err
		}
		w, local := localInterval(slabs[i].span, iv)
		if w.Len() == 0 {
			continue
		}
		if i == last {
			ok, n, err := slabs[i].core.reachFrom(ctx, frontier, q.Dst, local, acct)
			return ok, expanded + n, err
		}
		fr, n, err := sweepFrontier(ctx, slabs[i].core, sc.b[:0], frontier, local, par, acct)
		sc.b = fr
		expanded += n
		if err != nil {
			return false, expanded, err
		}
		if containsObject(fr, q.Dst) {
			// The destination is already infected mid-interval; infection
			// is monotone, so later slabs cannot change the answer.
			return true, expanded, nil
		}
		sc.a, sc.b = sc.b, sc.a
		frontier = sc.a
	}
	return false, expanded, nil
}

// planSet is the cross-segment reachable-set planner: the frontier is
// carried through every overlapping slab and the final frontier is the
// answer (sorted, deduplicated; copied out of the pooled buffers).
func planSet(ctx context.Context, slabs []segSlab, numObjects, numTicks int, src ObjectID, iv Interval, par int, acct *pagefile.Stats) ([]ObjectID, int, error) {
	if err := validatePlanIDs(numObjects, src, src); err != nil {
		return nil, 0, err
	}
	iv = iv.Intersect(Interval{Lo: 0, Hi: Tick(numTicks - 1)})
	if numTicks == 0 || iv.Len() == 0 {
		return nil, 0, nil
	}
	sc := planPool.Get()
	defer planPool.Put(sc)
	first, last := overlappingSlabs(slabs, iv)
	sc.a = append(sc.a[:0], src)
	frontier := sc.a
	expanded := 0
	for i := first; i <= last; i++ {
		if err := ctx.Err(); err != nil {
			return nil, expanded, err
		}
		w, local := localInterval(slabs[i].span, iv)
		if w.Len() == 0 {
			continue
		}
		fr, n, err := sweepFrontier(ctx, slabs[i].core, sc.b[:0], frontier, local, par, acct)
		sc.b = fr
		expanded += n
		if err != nil {
			return nil, expanded, err
		}
		sc.a, sc.b = sc.b, sc.a
		frontier = sc.a
	}
	return append([]ObjectID(nil), frontier...), expanded, nil
}

// planReverseSet is the backward cross-segment plan, the time mirror of
// planSet: it visits slabs[from..to] newest-first, seeding slab k with
// slab k+1's reverse frontier (the initial seeds stand in for the frontier
// beyond slab to), and appends the final frontier — every object that,
// holding an item at the start of slab from's overlap with iv, delivers it
// to one of the original seeds by iv.Hi — onto dst, sorted and
// deduplicated. Correctness is the time mirror of the forward planner's:
// delivery composes across consecutive sub-intervals with the deliverer
// frontier as the only carried state. Every visited slab core must
// implement reverseFrontierCore (the bidir backends verify this at open).
func planReverseSet(ctx context.Context, slabs []segSlab, from, to int, dst, seeds []ObjectID, iv Interval, par int, acct *pagefile.Stats) ([]ObjectID, int, error) {
	sc := planPool.Get()
	defer planPool.Put(sc)
	sc.a = append(sc.a[:0], seeds...)
	frontier := sc.a
	expanded := 0
	for i := to; i >= from; i-- {
		if err := ctx.Err(); err != nil {
			return dst, expanded, err
		}
		w, local := localInterval(slabs[i].span, iv)
		if w.Len() == 0 {
			continue
		}
		rc, ok := slabs[i].core.(reverseFrontierCore)
		if !ok {
			return dst, expanded, fmt.Errorf("streach: segment %v has no reverse frontier entry points", slabs[i].span)
		}
		fr, n, err := sweepReverseFrontier(ctx, rc, sc.b[:0], frontier, local, par, acct)
		sc.b = fr
		expanded += n
		if err != nil {
			return dst, expanded, err
		}
		sc.a, sc.b = sc.b, sc.a
		frontier = sc.a
	}
	return append(dst, frontier...), expanded, nil
}

// semPlanScratch is the pooled working state of one cross-segment
// semantic query: the global hop/arrival tables, the reached-object list,
// and the per-slab seed and entry buffers.
type semPlanScratch struct {
	hops    visit.Ticks // object → minimal transfers so far (tracked mode)
	arrival visit.Ticks // object → global earliest arrival
	reached []ObjectID
	seeds   []queries.SeedState
	buf     []queries.ProfileEntry
}

var semPlanPool = visit.NewPool(func() *semPlanScratch { return new(semPlanScratch) })

// planSemProfile is the cross-segment semantics planner: it walks the
// slabs overlapping iv in time order, seeding each slab with every object
// reached so far — carrying its residual hop budget (budget minus the
// transfers already spent) in hop-tracking mode — and merges the slab's
// slab-local profile back into the global tables: arrivals re-based to
// global ticks keep their first (earliest) value, hop counts keep their
// minimum. Correctness rests on the propagation state being Markovian in
// the per-object minimal hop counts: what an interval suffix can infect
// depends only on who currently holds the item and how many transfers
// each holder has spent. Every slab core must implement semCore and
// support spec (callers gate on this). A valid earlyDst short-circuits
// the walk as soon as it is reached.
func planSemProfile(ctx context.Context, slabs []segSlab, numObjects, numTicks int, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	iv = iv.Intersect(Interval{Lo: 0, Hi: Tick(numTicks - 1)})
	if numTicks == 0 || iv.Len() == 0 {
		return dst, 0, nil
	}
	trackHops := spec.tracksHops()
	ps := semPlanPool.Get()
	defer semPlanPool.Put(ps)
	ps.hops.Reset(numObjects)
	ps.arrival.Reset(numObjects)
	ps.reached = ps.reached[:0]
	for _, s := range seeds {
		if int(s.Obj) < 0 || int(s.Obj) >= numObjects || s.Hops < 0 || s.Hops > spec.budget {
			continue
		}
		if s.Start > iv.Hi {
			continue
		}
		at := s.Start
		if at < iv.Lo {
			at = iv.Lo
		}
		if prev, ok := ps.hops.Get(int(s.Obj)); !ok {
			ps.hops.Set(int(s.Obj), s.Hops)
			ps.arrival.Set(int(s.Obj), int32(at))
			ps.reached = append(ps.reached, s.Obj)
		} else if s.Hops < prev {
			ps.hops.Set(int(s.Obj), s.Hops)
		}
	}
	if len(ps.reached) == 0 {
		return dst, 0, nil
	}
	dstReached := func() bool {
		if int(earlyDst) < 0 || int(earlyDst) >= numObjects {
			return false
		}
		_, ok := ps.hops.Get(int(earlyDst))
		return ok
	}
	expanded := 0
	first, last := overlappingSlabs(slabs, iv)
	for i := first; i <= last && !dstReached(); i++ {
		if err := ctx.Err(); err != nil {
			return dst, expanded, err
		}
		w, local := localInterval(slabs[i].span, iv)
		if w.Len() == 0 {
			continue
		}
		// Seed the slab with every object holding the item by the slab's
		// window: objects arriving in an earlier slab enter at the window
		// start (Start re-bases below local lo and clamps up), objects
		// activating inside this slab enter at their own local tick, and
		// objects activating later stay out of the frontier for now.
		base := slabs[i].span.Lo
		ps.seeds = ps.seeds[:0]
		for _, o := range ps.reached {
			arr, _ := ps.arrival.Get(int(o))
			if Tick(arr) > w.Hi {
				continue
			}
			h := int32(0)
			if trackHops {
				h, _ = ps.hops.Get(int(o))
			}
			st := Tick(arr) - base
			if st < 0 {
				st = 0
			}
			ps.seeds = append(ps.seeds, queries.SeedState{Obj: o, Hops: h, Start: st})
		}
		if len(ps.seeds) == 0 {
			continue
		}
		sc, ok := slabs[i].core.(semCore)
		if !ok {
			return dst, expanded, fmt.Errorf("streach: segment %v has no semantics entry points", slabs[i].span)
		}
		entries, n, err := sc.semProfile(ctx, ps.buf[:0], ps.seeds, local, spec, earlyDst, acct)
		ps.buf = entries
		expanded += n
		if err != nil {
			return dst, expanded, err
		}
		for _, en := range entries {
			if prev, ok := ps.hops.Get(int(en.Obj)); !ok {
				h := en.Hops
				if !trackHops {
					// Hop-agnostic mode: cores may or may not count
					// transfers; normalize to "untracked" so mixed slab
					// answers stay consistent.
					h = -1
				}
				ps.hops.Set(int(en.Obj), h)
				ps.arrival.Set(int(en.Obj), int32(base+en.Arrival))
				ps.reached = append(ps.reached, en.Obj)
			} else {
				// Already reached: a slab can still beat a deferred seed's
				// provisional activation arrival (organic propagation inside
				// the seed's own slab arrives first), and a later slab may
				// deliver the item over fewer transfers.
				if prevArr, _ := ps.arrival.Get(int(en.Obj)); int32(base+en.Arrival) < prevArr {
					ps.arrival.Set(int(en.Obj), int32(base+en.Arrival))
				}
				if trackHops && en.Hops >= 0 && en.Hops < prev {
					ps.hops.Set(int(en.Obj), en.Hops)
				}
			}
		}
	}
	list := sortDedupObjects(ps.reached)
	for _, o := range list {
		h, _ := ps.hops.Get(int(o))
		arr, _ := ps.arrival.Get(int(o))
		dst = append(dst, queries.ProfileEntry{Obj: o, Hops: h, Arrival: Tick(arr)})
	}
	return dst, expanded, nil
}

func (c *segmentedCore) semSupports(spec semSpec) bool {
	for _, s := range c.slabs {
		sc, ok := s.core.(semCore)
		if !ok || !sc.semSupports(spec) {
			return false
		}
	}
	return true
}

func (c *segmentedCore) semProfile(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	return planSemProfile(ctx, c.slabs, c.numObjects, c.numTicks, dst, seeds, iv, spec, earlyDst, acct)
}

// overlappingSlabs returns the index range of slabs whose spans overlap iv
// (spans are ascending and disjoint). last < first when none overlap.
func overlappingSlabs(slabs []segSlab, iv Interval) (first, last int) {
	first = sort.Search(len(slabs), func(i int) bool { return slabs[i].span.Hi >= iv.Lo })
	last = sort.Search(len(slabs), func(i int) bool { return slabs[i].span.Lo > iv.Hi }) - 1
	return first, last
}

// localInterval clips iv to the slab and re-bases it to slab-local ticks.
func localInterval(span, iv Interval) (global, local Interval) {
	w := span.Intersect(iv)
	if w.Len() == 0 {
		return w, w
	}
	return w, Interval{Lo: w.Lo - span.Lo, Hi: w.Hi - span.Lo}
}

// containsObject reports whether sorted contains o (binary search).
func containsObject(sorted []ObjectID, o ObjectID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= o })
	return i < len(sorted) && sorted[i] == o
}

func validatePlanIDs(numObjects int, src, dst ObjectID) error {
	if int(src) < 0 || int(src) >= numObjects {
		return fmt.Errorf("streach: source %d outside [0, %d)", src, numObjects)
	}
	if int(dst) < 0 || int(dst) >= numObjects {
		return fmt.Errorf("streach: destination %d outside [0, %d)", dst, numObjects)
	}
	return nil
}

// segmentedCore is the engineCore of a segmented backend: one sealed
// per-slab core per time slab plus the planner. Slab cores are immutable
// after construction, so queries run fully in parallel like every other
// registry engine.
type segmentedCore struct {
	base       string
	slabs      []segSlab
	numObjects int
	numTicks   int

	// bidir routes point queries through the bidirectional planner
	// (planReachBidir); set only by the "bidir:*" backends, whose slab
	// cores are all reverseFrontierCore. Set/semantics queries keep the
	// forward planner either way.
	bidir bool
	// parallelism is the worker budget for large frontier sweeps
	// (Options.QueryParallelism); <= 1 keeps every sweep serial.
	parallelism int
}

func (c *segmentedCore) reach(ctx context.Context, q Query, acct *pagefile.Stats) (bool, int, error) {
	if c.bidir {
		return planReachBidir(ctx, c.slabs, c.numObjects, c.numTicks, q, c.parallelism, acct)
	}
	return planReach(ctx, c.slabs, c.numObjects, c.numTicks, q, c.parallelism, acct)
}

func (c *segmentedCore) reachSet(ctx context.Context, src ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, error) {
	objs, _, err := planSet(ctx, c.slabs, c.numObjects, c.numTicks, src, iv, c.parallelism, acct)
	return objs, err
}

func (c *segmentedCore) ioTotals() pagefile.Stats {
	var sum pagefile.Stats
	for _, s := range c.slabs {
		sum.Add(s.core.ioTotals())
	}
	return sum
}

func (c *segmentedCore) resetIO() {
	for _, s := range c.slabs {
		s.core.resetIO()
	}
}

func (c *segmentedCore) indexBytes() int64 {
	var sum int64
	for _, s := range c.slabs {
		sum += s.core.indexBytes()
	}
	return sum
}

func (c *segmentedCore) dropCache() {
	for _, s := range c.slabs {
		s.core.dropCache()
	}
}

func (c *segmentedCore) segmentStats() []SegmentStats {
	out := make([]SegmentStats, len(c.slabs))
	for i, s := range c.slabs {
		out[i] = SegmentStats{
			Span:       s.span,
			IO:         statsOf(s.core.ioTotals()),
			IndexBytes: s.core.indexBytes(),
		}
	}
	return out
}

// SegmentStats describes one time-slab segment of a segmented engine: its
// global tick span, the cumulative simulated I/O its segment has served,
// and its on-disk size. The per-segment counters make planner locality
// observable — a query must only ever charge the segments overlapping its
// interval. For a LiveEngine, DeltaEvents is the segment's pending
// delta-log depth (late/retracted contacts not yet compacted into the
// sealed index); zero for frozen segments.
type SegmentStats struct {
	Span        Interval
	IO          IOStats
	IndexBytes  int64
	DeltaEvents int
}

// Segmented is implemented by engines built from time-sliced segments
// (the "segmented:*" backends and LiveEngine). Callers obtain it by type
// assertion from an Engine.
type Segmented interface {
	// SegmentStats returns one entry per segment in ascending time order.
	SegmentStats() []SegmentStats
}

// segmentedEngine wraps the uniform engine with the Segmented surface.
type segmentedEngine struct {
	*engine
	seg *segmentedCore
}

func (e *segmentedEngine) SegmentStats() []SegmentStats { return e.seg.segmentStats() }

// segmentedBases lists the backends that support segmentation — the ones
// with multi-source frontier entry points. Each is registered a second
// time under "segmented:<name>".
var segmentedBases = []struct {
	name              string
	diskResident      bool
	needsTrajectories bool
}{
	{"reachgrid", true, true},
	{"reachgraph", true, false},
	{"reachgraph-mem", false, false},
	{"oracle", false, false},
}

func init() {
	for _, b := range segmentedBases {
		base := b.name
		register(BackendInfo{
			Name: "segmented:" + base,
			Description: fmt.Sprintf(
				"time-sliced %s segments with a frontier-carrying cross-segment planner", base),
			DiskResident:      b.diskResident,
			NeedsTrajectories: b.needsTrajectories,
		}, func(src Source, opts Options) (engineCore, error) {
			return buildSegmentedCore(base, src, opts)
		})
	}
}

// withSharedSlabPool returns opts with a buffer pool that every
// disk-resident slab of one segmented (or live) engine shares: the
// caller's Options.Pool when set, otherwise a pool private to the engine —
// either way all slabs draw on a single page budget, exactly like the
// serving configuration of unsegmented engines. The 64-page fallback
// mirrors the backends' own Params default.
func withSharedSlabPool(opts Options, diskResident bool) Options {
	if !diskResident || opts.Pool != nil {
		return opts
	}
	pages := opts.PoolPages
	if pages == 0 {
		pages = 64
	}
	if pages > 0 {
		opts.Pool = NewBufferPool(pages)
	}
	return opts
}

// buildSegmentedCore splits src into time slabs and builds one base-backend
// segment per slab. Disk-resident segments share one buffer pool: the
// caller's Options.Pool when set, otherwise a pool private to this engine —
// either way all slabs draw on a single page budget, exactly like the
// serving configuration of unsegmented engines.
func buildSegmentedCore(base string, src Source, opts Options) (*segmentedCore, error) {
	spec, ok := lookupSpec(base)
	if !ok {
		return nil, fmt.Errorf("%w %q (segmented base)", ErrUnknownBackend, base)
	}
	numObjects, numTicks := sourceDims(src)
	if numTicks == 0 {
		return nil, fmt.Errorf("streach: segmented %q: empty time domain", base)
	}
	layout := segment.NewLayout(opts.SegmentTicks, numTicks)
	slabOpts := withSharedSlabPool(opts, spec.info.DiskResident)
	core := &segmentedCore{
		base:        base,
		numObjects:  numObjects,
		numTicks:    numTicks,
		parallelism: opts.QueryParallelism,
	}
	for i := 0; i < layout.NumSlabs(); i++ {
		span := layout.Span(i)
		var slabSrc Source
		if spec.info.NeedsTrajectories {
			slabSrc = &Dataset{d: src.sourceDataset().d.Window(span.Lo, span.Hi)}
		} else {
			slabSrc = &ContactNetwork{net: src.sourceContacts().net.Window(span.Lo, span.Hi)}
		}
		sc, err := spec.open(slabSrc, slabOpts)
		if err != nil {
			return nil, fmt.Errorf("segment %v: %w", span, err)
		}
		fc, ok := sc.(frontierCore)
		if !ok {
			return nil, fmt.Errorf("streach: backend %q has no frontier entry points", base)
		}
		core.slabs = append(core.slabs, segSlab{span: span, core: fc})
	}
	return core, nil
}
