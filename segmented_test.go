package streach_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"streach"
)

// segmentedPairs maps each segmented backend onto its unsegmented base.
var segmentedPairs = [][2]string{
	{"segmented:reachgrid", "reachgrid"},
	{"segmented:reachgraph", "reachgraph"},
	{"segmented:reachgraph-mem", "reachgraph-mem"},
	{"segmented:oracle", "oracle"},
}

// TestSegmentedAgreesWithBase runs the full conformance workload through
// every segmented engine and its unsegmented counterpart and asserts
// byte-identical answers — point queries and reachable sets — regardless
// of how many slab boundaries a query crosses.
func TestSegmentedAgreesWithBase(t *testing.T) {
	ds := conformanceSource(t)
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(),
		NumTicks:   ds.NumTicks(),
		Count:      60,
		MinLen:     10,
		MaxLen:     ds.NumTicks(), // up to the whole domain: every slab crossed
		Seed:       131,
	})
	ctx := context.Background()
	for _, pair := range segmentedPairs {
		segName, baseName := pair[0], pair[1]
		// A narrow slab width forces multi-segment plans for most queries.
		seg, err := streach.Open(segName, ds, streach.Options{SegmentTicks: 64})
		if err != nil {
			t.Fatalf("open %q: %v", segName, err)
		}
		base, err := streach.Open(baseName, ds, streach.Options{})
		if err != nil {
			t.Fatalf("open %q: %v", baseName, err)
		}
		for _, q := range work {
			sr, err := seg.Reachable(ctx, q)
			if err != nil {
				t.Fatalf("%q %v: %v", segName, q, err)
			}
			br, err := base.Reachable(ctx, q)
			if err != nil {
				t.Fatalf("%q %v: %v", baseName, q, err)
			}
			if sr.Reachable != br.Reachable {
				t.Fatalf("%q disagrees with %q on %v: %v vs %v",
					segName, baseName, q, sr.Reachable, br.Reachable)
			}
		}
		for src := streach.ObjectID(0); src < 6; src++ {
			iv := streach.NewInterval(streach.Tick(30*src), streach.Tick(30*src)+150)
			ss, err := seg.ReachableSet(ctx, src, iv)
			if err != nil {
				t.Fatalf("%q set %d: %v", segName, src, err)
			}
			bs, err := base.ReachableSet(ctx, src, iv)
			if err != nil {
				t.Fatalf("%q set %d: %v", baseName, src, err)
			}
			if !equalIDs(ss.Objects, bs.Objects) {
				t.Fatalf("%q set %d %v: got %v, base %v", segName, src, iv, ss.Objects, bs.Objects)
			}
		}
	}
}

// TestPlannerReadsOnlyOverlappingSegments asserts the planner's locality
// guarantee via the per-segment I/O counters: a query whose interval
// touches only some slabs must charge zero traffic to every other slab.
func TestPlannerReadsOnlyOverlappingSegments(t *testing.T) {
	ds := conformanceSource(t) // 400 ticks
	e, err := streach.Open("segmented:reachgraph", ds, streach.Options{SegmentTicks: 50})
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := e.(streach.Segmented)
	if !ok {
		t.Fatal("segmented engine does not expose SegmentStats")
	}
	stats := seg.SegmentStats()
	if len(stats) != 8 {
		t.Fatalf("got %d segments, want 8", len(stats))
	}
	// Spans must tile the domain.
	expect := streach.Tick(0)
	for i, s := range stats {
		if s.Span.Lo != expect {
			t.Fatalf("segment %d starts at %d, want %d", i, s.Span.Lo, expect)
		}
		expect = s.Span.Hi + 1
		if s.IO.Normalized != 0 {
			t.Fatalf("segment %d charged %f IOs before any query", i, s.IO.Normalized)
		}
	}
	if int(expect) != ds.NumTicks() {
		t.Fatalf("segments end at %d, want %d", expect, ds.NumTicks())
	}

	// Interval [120, 230] overlaps exactly slabs 2..4.
	iv := streach.NewInterval(120, 230)
	ctx := context.Background()
	for src := streach.ObjectID(0); src < 8; src++ {
		if _, err := e.Reachable(ctx, streach.Query{Src: src, Dst: src + 20, Interval: iv}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.ReachableSet(ctx, src, iv); err != nil {
			t.Fatal(err)
		}
	}
	var touched float64
	for i, s := range seg.SegmentStats() {
		inPlan := i >= 2 && i <= 4
		if !inPlan && s.IO.Normalized != 0 {
			t.Errorf("segment %d (span %v) outside the plan charged %.1f IOs", i, s.Span, s.IO.Normalized)
		}
		if inPlan {
			touched += s.IO.Normalized
		}
	}
	if touched == 0 {
		t.Error("no I/O charged to the overlapping segments")
	}
	// Engine totals must equal the per-segment sum.
	var sum streach.IOStats
	for _, s := range seg.SegmentStats() {
		sum.RandomReads += s.IO.RandomReads
		sum.SequentialReads += s.IO.SequentialReads
		sum.BufferHits += s.IO.BufferHits
	}
	tot := e.IOTotals()
	if sum.RandomReads != tot.RandomReads || sum.SequentialReads != tot.SequentialReads ||
		sum.BufferHits != tot.BufferHits {
		t.Errorf("per-segment sum %+v != engine totals %+v", sum, tot)
	}
}

// TestSegmentedRegistrySurface pins the registry integration: segmented
// names are listed, carry the base's source requirements, and honour
// SegmentTicks.
func TestSegmentedRegistrySurface(t *testing.T) {
	have := map[string]bool{}
	for _, name := range streach.Backends() {
		have[name] = true
	}
	for _, pair := range segmentedPairs {
		if !have[pair[0]] {
			t.Errorf("backend %q not registered", pair[0])
		}
	}
	ds := conformanceSource(t)
	if _, err := streach.Open("segmented:reachgrid", ds.Contacts(), streach.Options{}); !errors.Is(err, streach.ErrNeedsTrajectories) {
		t.Errorf("segmented:reachgrid from contacts: got %v, want ErrNeedsTrajectories", err)
	}
	// grail has no frontier entry points and must not be segmentable.
	if _, err := streach.Open("segmented:grail", ds, streach.Options{}); !errors.Is(err, streach.ErrUnknownBackend) {
		t.Errorf("segmented:grail: got %v, want ErrUnknownBackend", err)
	}
}

// TestCancelledQueryReturnsPromptly cancels contexts against real engines:
// an already-cancelled context must surface context.Canceled even though
// the query would otherwise traverse a large interval, and an in-flight
// cancellation must unblock a batch within a generous bound.
func TestCancelledQueryReturnsPromptly(t *testing.T) {
	ds := conformanceSource(t)
	q := streach.Query{Src: 1, Dst: 2, Interval: streach.NewInterval(0, streach.Tick(ds.NumTicks()-1))}
	for _, name := range []string{"reachgrid", "spj", "reachgraph", "segmented:reachgraph"} {
		e, err := streach.Open(name, ds, streach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.Reachable(ctx, q); !errors.Is(err, context.Canceled) {
			t.Errorf("%q: got %v, want context.Canceled", name, err)
		}
	}

	// In-flight: cancel while a batch over a slow backend is running; the
	// traversal-loop ctx checks must unblock it long before the deadline.
	e, err := streach.Open("spj", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	work := make([]streach.Query, 64)
	for i := range work {
		work[i] = streach.Query{
			Src: streach.ObjectID(i % ds.NumObjects()), Dst: 0,
			Interval: streach.NewInterval(0, streach.Tick(ds.NumTicks()-1)),
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := streach.EvaluateBatch(ctx, e, work, streach.BatchOptions{Workers: 2})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// Either the batch finished before the cancel landed, or it was
		// cancelled — both are fine; hanging is not.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("batch returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not return")
	}
}
