// The temporal-semantics query layer: earliest-arrival, hop-bounded and
// top-k transfer-decay queries over every registry backend.
//
// Plain reachability answers *whether* an item spreads; contact-tracing
// and dissemination workloads also ask *when* it arrives, *through how
// many transfers*, and *which K contacts matter most* (the query families
// of Strzheletska & Tsotras and Ali et al.). The layer reduces all three
// to one primitive — the propagation profile: per reachable object, the
// minimal transfer count and the earliest arrival tick — and evaluates it
// natively inside the traversal cores wherever the backend's structure
// allows:
//
//   - oracle: per-instant hop relaxation, the ground truth (all semantics)
//   - reachgrid: the guided sweep with relaxation instead of union-find
//     (all semantics — the grid joins real contact pairs per instant)
//   - reachgraph, reachgraph-mem (all strategies): a forward arrival sweep
//     over the run DAG (earliest-arrival only; runs collapse contact
//     components, so transfer counts are not derivable)
//   - segmented:* and LiveEngine: the cross-segment planner carries
//     arrival ticks and residual hop budgets across slab frontiers, native
//     whenever every slab core is
//
// Everything else (spj, grail, grail-mem; hop queries on reachgraph) falls
// back to a brute-force oracle over the engine's source contacts; results
// carry a Native flag so the fallback is always explicit. The evaluators
// reuse the pooled epoch-stamped visit machinery (tick tables instead of
// boolean sets); plain boolean queries never touch this layer and keep
// their zero-allocation steady state.

package streach

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/visit"
)

// Semantics optionally refines a Query's propagation model: a transfer
// (hop) bound, earliest-arrival tracking, a per-transfer decay weight. The
// zero value is plain boolean reachability and stays on the engines'
// allocation-free boolean path.
type Semantics = queries.Semantics

// ArrivalResult is the typed answer to an EarliestArrival query.
type ArrivalResult struct {
	// Src, Dst and Interval echo the evaluated query.
	Src, Dst ObjectID
	Interval Interval
	// Reachable is the boolean answer; Arrival is the earliest tick at
	// which Dst holds the item (-1 when unreachable).
	Reachable bool
	Arrival   Tick
	// Hops is the minimal number of transfers among delivery chains
	// arriving by the Arrival tick, when the evaluating core tracks
	// transfer counts; -1 otherwise (ReachGraph's arrival sweep is
	// hop-agnostic). Contacts after the arrival may deliver the item over
	// fewer transfers — TopKReachable ranks by that full-interval minimum.
	Hops int
	// Native reports whether the backend evaluated the query in its own
	// traversal core; false means the oracle fallback answered.
	Native bool
	// IO, Latency, Expanded mirror Result.
	IO       IOStats
	Latency  time.Duration
	Expanded int
}

// Ranked is one entry of a top-k reachability answer.
type Ranked struct {
	// Object is the reached object.
	Object ObjectID
	// Hops is its minimal transfer count; Arrival its earliest receipt
	// tick.
	Hops    int
	Arrival Tick
	// Weight is decay^Hops, the received item weight under transfer decay.
	Weight float64
}

// TopKResult is the typed answer to a TopKReachable query.
type TopKResult struct {
	// Src, Interval, K and Decay echo the evaluated query.
	Src      ObjectID
	Interval Interval
	K        int
	Decay    float64
	// Items holds at most K entries, ranked by Weight descending, then
	// Arrival ascending, then Object ascending. Src itself is excluded.
	Items []Ranked
	// Native, IO, Latency, Expanded mirror ArrivalResult.
	Native   bool
	IO       IOStats
	Latency  time.Duration
	Expanded int
}

// semSpec classifies one semantic evaluation: the transfer budget
// (queries.UnboundedHops for none), whether per-object transfer counts
// must be reported (top-k decay ranking needs them even when unbounded),
// and the per-contact predicate restricting propagation. Probability does
// not appear: under the uniform per-contact p of §7 the best path
// probability is p^minHops and the threshold τ folds into the budget
// (Semantics.EffectiveBudget), so probabilistic queries ride the
// hop-tracking plumbing of every layer — the spec they compile to is just
// a budgeted, hop-reporting spec, and the facade stamps Result.Prob from
// the returned transfer count.
type semSpec struct {
	budget   int32
	needHops bool
	filter   queries.Filter
}

// tracksHops reports whether the evaluation must count transfers.
func (s semSpec) tracksHops() bool {
	return s.budget != queries.UnboundedHops || s.needHops
}

// ErrBadSemantics wraps every Semantics validation failure — inconsistent
// probabilistic parameters, negative bounds, unregistered filter IDs — so
// callers (the serving layer in particular) can distinguish a malformed
// query from an evaluation failure.
var ErrBadSemantics = errors.New("streach: invalid query semantics")

// specFor compiles a query's Semantics into the evaluation spec, folding
// the probability threshold into the transfer budget and forcing hop
// tracking when a probability must be reported. It rejects inconsistent
// probabilistic parameters and unregistered filter IDs up front, so no
// evaluator ever sees a predicate it cannot resolve.
func specFor(sem Semantics) (semSpec, error) {
	if sem.Prob < 0 || sem.Prob > 1 || math.IsNaN(sem.Prob) {
		return semSpec{}, fmt.Errorf("%w: contact probability %v outside [0, 1]", ErrBadSemantics, sem.Prob)
	}
	if sem.ProbThreshold != 0 {
		if sem.Prob == 0 {
			return semSpec{}, fmt.Errorf("%w: probability threshold %v without a contact probability", ErrBadSemantics, sem.ProbThreshold)
		}
		if !(sem.ProbThreshold > 0 && sem.ProbThreshold <= 1) {
			return semSpec{}, fmt.Errorf("%w: probability threshold %v outside (0, 1]", ErrBadSemantics, sem.ProbThreshold)
		}
	}
	if sem.MCTrials < 0 {
		return semSpec{}, fmt.Errorf("%w: negative Monte-Carlo trial count %d", ErrBadSemantics, sem.MCTrials)
	}
	if sem.MCTrials > 0 && sem.Prob == 0 {
		return semSpec{}, fmt.Errorf("%w: Monte-Carlo trials without a contact probability", ErrBadSemantics)
	}
	if sem.MinDuration < 0 {
		return semSpec{}, fmt.Errorf("%w: negative minimum duration %d", ErrBadSemantics, sem.MinDuration)
	}
	if sem.MaxWeight < 0 || math.IsNaN(sem.MaxWeight) {
		return semSpec{}, fmt.Errorf("%w: invalid maximum weight %v", ErrBadSemantics, sem.MaxWeight)
	}
	if sem.FilterID != "" {
		if _, ok := queries.ResolveFilter(sem.FilterID); !ok {
			return semSpec{}, fmt.Errorf("%w: unregistered contact filter %q", ErrBadSemantics, sem.FilterID)
		}
	}
	return semSpec{
		budget:   sem.EffectiveBudget(),
		needHops: sem.Prob > 0,
		filter:   sem.Filter(),
	}, nil
}

// RegisterContactFilter registers a compiled per-contact predicate under
// id for use via Semantics.FilterID: queries then propagate only over
// contacts the predicate accepts, on every backend (natively where the
// backend evaluates contact records, through the exact oracle projection
// otherwise). Register at process setup; serving layers accept only
// registered IDs.
func RegisterContactFilter(id string, fn func(Contact) bool) {
	queries.RegisterFilter(id, fn)
}

// semCore is the optional native temporal-semantics surface of an
// engineCore. Cores advertise which evaluation classes they implement;
// the engine falls back to the oracle for the rest.
type semCore interface {
	// semSupports reports whether semProfile evaluates spec natively.
	semSupports(spec semSpec) bool
	// semProfile appends to dst the propagation profile of the seed
	// frontier over iv (sorted by object ID): minimal transfer counts
	// under spec.budget — or -1 when the core does not track hops — and
	// earliest arrival ticks. A valid earlyDst stops the evaluation as
	// soon as earlyDst is reachable (the profile is then partial but
	// earlyDst's entry exact). The int result is the expansion counter.
	semProfile(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error)
}

// --- native core implementations ---

func (c oracleCore) semSupports(semSpec) bool { return true }

func (c oracleCore) semProfile(_ context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, _ *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	entries, n := c.o.Filtered(spec.filter).ProfileFrom(seeds, iv, spec.budget, earlyDst)
	return append(dst, entries...), n, nil
}

// The grid joins object positions per instant and never sees contact
// records, so per-contact predicates cannot be pushed into the sweep.
func (c gridCore) semSupports(spec semSpec) bool { return !spec.filter.Active() }

func (c gridCore) semProfile(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	return c.ix.AppendSemProfileFrom(ctx, dst, seeds, iv, spec.budget, earlyDst, acct)
}

func (c graphCore) semSupports(spec semSpec) bool {
	return !spec.tracksHops() && !spec.filter.Active()
}

func (c graphCore) semProfile(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, _ semSpec, _ ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	return c.ix.AppendArrivalProfileSeeds(ctx, dst, seeds, iv, acct)
}

func (c graphMemCore) semSupports(spec semSpec) bool {
	return !spec.tracksHops() && !spec.filter.Active()
}

func (c graphMemCore) semProfile(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, _ semSpec, _ ObjectID, _ *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	return c.m.AppendArrivalProfileSeeds(ctx, dst, seeds, iv)
}

// semScratch is the pooled working state of one facade-level semantic
// query: the seed buffer and the profile entry buffer.
type semScratch struct {
	seeds   []queries.SeedState
	entries []queries.ProfileEntry
}

var semPool = visit.NewPool(func() *semScratch { return new(semScratch) })

// --- shared entry-point protocol ---

// semEvaluator is the evaluation surface behind the public semantic entry
// points, implemented by the uniform engine (native core or oracle
// fallback) and by LiveEngine's per-query log views (cross-segment
// planner or snapshot oracle). The shared eval* functions below own the
// whole query protocol — validation, clamping, the src==dst shortcut,
// seeding, result bookkeeping — so the two engine flavors cannot drift.
type semEvaluator interface {
	// semDims returns the object and tick domain sizes.
	semDims() (numObjects, numTicks int)
	// semNativeFor reports whether spec evaluates natively.
	semNativeFor(spec semSpec) bool
	// semEvaluate runs one profile evaluation; the returned entries may
	// alias sc.entries and must be consumed before sc is released.
	semEvaluate(ctx context.Context, sc *semScratch, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, bool, error)
	// semOracle returns an exact oracle over the evaluator's current
	// contact set, for estimators that need the raw network (Monte-Carlo
	// sampling) rather than a profile evaluation.
	semOracle() *queries.Oracle
}

func (e *engine) semDims() (int, int) { return e.numObjects, e.numTicks }

// semNativeFor reports whether the engine's core evaluates spec natively.
func (e *engine) semNativeFor(spec semSpec) bool {
	sc, ok := e.core.(semCore)
	return ok && sc.semSupports(spec)
}

// semEvaluate runs one semantic evaluation: natively when the core
// supports the spec, through the lazily-built oracle fallback otherwise.
func (e *engine) semEvaluate(ctx context.Context, sc *semScratch, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, bool, error) {
	if c, ok := e.core.(semCore); ok && c.semSupports(spec) {
		entries, n, err := c.semProfile(ctx, sc.entries[:0], seeds, iv, spec, earlyDst, acct)
		sc.entries = entries
		return entries, n, true, err
	}
	entries, n := e.fallbackOracle().Filtered(spec.filter).ProfileFrom(seeds, iv, spec.budget, earlyDst)
	return entries, n, false, nil
}

func (e *engine) semOracle() *queries.Oracle { return e.fallbackOracle() }

// fallbackOracle lazily builds the brute-force oracle over the engine's
// source contacts. For trajectory sources this triggers (or reuses) the
// dataset's one cached contact extraction.
func (e *engine) fallbackOracle() *queries.Oracle {
	e.fbOnce.Do(func() {
		e.fb = queries.NewOracle(e.src.sourceContacts().net)
	})
	return e.fb
}

// findEntry locates obj in a profile (entries are sorted by object).
func findEntry(entries []queries.ProfileEntry, obj ObjectID) (queries.ProfileEntry, bool) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Obj >= obj })
	if i < len(entries) && entries[i].Obj == obj {
		return entries[i], true
	}
	return queries.ProfileEntry{}, false
}

// clampDomain intersects iv with a numTicks-sized time domain.
func clampDomain(iv Interval, numTicks int) Interval {
	return iv.Intersect(Interval{Lo: 0, Hi: Tick(numTicks - 1)})
}

// evalReachableSem answers a point query whose Semantics field is active:
// hop-bounded, predicate-filtered and/or probabilistic reachability with
// earliest-arrival tracking. Probabilistic queries report the best-path
// probability p^minHops under the τ-folded budget, except when MCTrials
// requests the seeded Monte-Carlo reliability estimate, which diverts to
// the evaluator's exact oracle before any profile evaluation.
func evalReachableSem(ctx context.Context, ev semEvaluator, q Query) (Result, error) {
	numObjects, numTicks := ev.semDims()
	if err := validatePlanIDs(numObjects, q.Src, q.Dst); err != nil {
		return Result{}, err
	}
	spec, err := specFor(q.Semantics)
	if err != nil {
		return Result{}, err
	}
	if q.Semantics.MCTrials > 0 {
		return evalMonteCarlo(ev, q, numTicks)
	}
	res := Result{Query: q, Evaluated: true, Arrival: -1, Hops: -1, Native: ev.semNativeFor(spec)}
	iv := clampDomain(q.Interval, numTicks)
	if numTicks == 0 || iv.Len() == 0 {
		return res, nil
	}
	if q.Src == q.Dst {
		res.Reachable, res.Arrival, res.Hops = true, iv.Lo, 0
		if q.Semantics.Prob > 0 {
			res.Prob = 1
		}
		return res, nil
	}
	acct := acctPool.Get().(*pagefile.Stats)
	defer acctPool.Put(acct)
	acct.Reset()
	sc := semPool.Get()
	defer semPool.Put(sc)
	start := time.Now()
	seeds := append(sc.seeds[:0], queries.SeedState{Obj: q.Src, Hops: 0})
	sc.seeds = seeds
	// Early termination stops the profile at the destination's earliest
	// arrival, whose delivery chain may use more transfers than the
	// interval's overall minimum. The best-path probability is p^minHops
	// over the whole interval, so probabilistic queries run it to the end.
	early := q.Dst
	if q.Semantics.Prob > 0 {
		early = queries.NoObject
	}
	entries, expanded, native, err := ev.semEvaluate(ctx, sc, seeds, iv, spec, early, acct)
	if err != nil {
		return Result{}, err
	}
	res.Native = native
	if en, ok := findEntry(entries, q.Dst); ok {
		res.Reachable = true
		res.Arrival = en.Arrival
		res.Hops = int(en.Hops)
		if p := q.Semantics.Prob; p > 0 && res.Hops >= 0 {
			res.Prob = math.Pow(p, float64(res.Hops))
		}
	}
	res.IO = statsOf(*acct)
	res.Latency = time.Since(start)
	res.Expanded = expanded
	return res, nil
}

// evalMonteCarlo answers a probabilistic point query by seeded world
// sampling over the evaluator's exact contact oracle (two-terminal
// reliability, an upper bound on the best-path probability). It is the
// documented fallback — never native — and reports the estimate in
// Result.Prob; Reachable compares it against the query's threshold.
func evalMonteCarlo(ev semEvaluator, q Query, numTicks int) (Result, error) {
	res := Result{Query: q, Evaluated: true, Arrival: -1, Hops: -1}
	iv := clampDomain(q.Interval, numTicks)
	if numTicks == 0 || iv.Len() == 0 {
		return res, nil
	}
	start := time.Now()
	mq := q
	mq.Interval = iv
	est := ev.semOracle().MonteCarloReachable(mq)
	res.Prob = est
	if tau := q.Semantics.ProbThreshold; tau > 0 {
		res.Reachable = est >= tau
	} else {
		res.Reachable = est > 0
	}
	if q.Src == q.Dst {
		res.Arrival, res.Hops = iv.Lo, 0
	}
	res.Latency = time.Since(start)
	return res, nil
}

// evalEarliestArrival is the shared EarliestArrival protocol.
func evalEarliestArrival(ctx context.Context, ev semEvaluator, src, dst ObjectID, iv Interval) (ArrivalResult, error) {
	if err := ctx.Err(); err != nil {
		return ArrivalResult{}, err
	}
	numObjects, numTicks := ev.semDims()
	if err := validatePlanIDs(numObjects, src, dst); err != nil {
		return ArrivalResult{}, err
	}
	spec := semSpec{budget: queries.UnboundedHops}
	res := ArrivalResult{Src: src, Dst: dst, Interval: iv, Arrival: -1, Hops: -1, Native: ev.semNativeFor(spec)}
	clamped := clampDomain(iv, numTicks)
	if numTicks == 0 || clamped.Len() == 0 {
		return res, nil
	}
	if src == dst {
		res.Reachable, res.Arrival, res.Hops = true, clamped.Lo, 0
		return res, nil
	}
	acct := acctPool.Get().(*pagefile.Stats)
	defer acctPool.Put(acct)
	acct.Reset()
	sc := semPool.Get()
	defer semPool.Put(sc)
	start := time.Now()
	seeds := append(sc.seeds[:0], queries.SeedState{Obj: src, Hops: 0})
	sc.seeds = seeds
	entries, expanded, native, err := ev.semEvaluate(ctx, sc, seeds, clamped, spec, dst, acct)
	if err != nil {
		return ArrivalResult{}, err
	}
	res.Native = native
	if en, ok := findEntry(entries, dst); ok {
		res.Reachable = true
		res.Arrival = en.Arrival
		res.Hops = int(en.Hops)
	}
	res.IO = statsOf(*acct)
	res.Latency = time.Since(start)
	res.Expanded = expanded
	return res, nil
}

// evalTopKReachable is the shared TopKReachable protocol.
func evalTopKReachable(ctx context.Context, ev semEvaluator, src ObjectID, iv Interval, k int, decay float64) (TopKResult, error) {
	if err := ctx.Err(); err != nil {
		return TopKResult{}, err
	}
	numObjects, numTicks := ev.semDims()
	if err := validatePlanIDs(numObjects, src, src); err != nil {
		return TopKResult{}, err
	}
	if err := validateTopK(k, decay); err != nil {
		return TopKResult{}, err
	}
	spec := semSpec{budget: queries.UnboundedHops, needHops: true}
	res := TopKResult{Src: src, Interval: iv, K: k, Decay: decay, Native: ev.semNativeFor(spec)}
	clamped := clampDomain(iv, numTicks)
	if numTicks == 0 || clamped.Len() == 0 || k == 0 {
		return res, nil
	}
	acct := acctPool.Get().(*pagefile.Stats)
	defer acctPool.Put(acct)
	acct.Reset()
	sc := semPool.Get()
	defer semPool.Put(sc)
	start := time.Now()
	seeds := append(sc.seeds[:0], queries.SeedState{Obj: src, Hops: 0})
	sc.seeds = seeds
	entries, expanded, native, err := ev.semEvaluate(ctx, sc, seeds, clamped, spec, queries.NoObject, acct)
	if err != nil {
		return TopKResult{}, err
	}
	res.Native = native
	res.Items = rankTopK(entries, src, k, decay)
	res.IO = statsOf(*acct)
	res.Latency = time.Since(start)
	res.Expanded = expanded
	return res, nil
}

func (e *engine) EarliestArrival(ctx context.Context, src, dst ObjectID, iv Interval) (ArrivalResult, error) {
	return evalEarliestArrival(ctx, e, src, dst, iv)
}

func (e *engine) TopKReachable(ctx context.Context, src ObjectID, iv Interval, k int, decay float64) (TopKResult, error) {
	return evalTopKReachable(ctx, e, src, iv, k, decay)
}

// validateTopK rejects nonsensical top-k parameters.
func validateTopK(k int, decay float64) error {
	if k < 0 {
		return fmt.Errorf("streach: negative k %d", k)
	}
	if !(decay > 0 && decay <= 1) {
		return fmt.Errorf("streach: decay %v outside (0, 1]", decay)
	}
	return nil
}

// rankTopK ranks a full propagation profile under transfer decay and
// returns the top k entries, src excluded. Ordering is weight descending,
// then arrival ascending, then object ascending — fully deterministic.
func rankTopK(entries []queries.ProfileEntry, src ObjectID, k int, decay float64) []Ranked {
	items := make([]Ranked, 0, len(entries))
	for _, en := range entries {
		if en.Obj == src {
			continue
		}
		items = append(items, Ranked{
			Object:  en.Obj,
			Hops:    int(en.Hops),
			Arrival: en.Arrival,
			Weight:  math.Pow(decay, float64(en.Hops)),
		})
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.Object < b.Object
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}
