package streach_test

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"streach"
)

// semantics_test.go validates the temporal-semantics layer against an
// independent brute-force reference (implemented here, not shared with the
// oracle): earliest-arrival ticks, hop-bounded reachability and top-k
// transfer-decay rankings must agree on every backend that advertises the
// capability, and the fallback path must agree for the rest.

// refProfile is the reference propagation profile: per object, minimal
// transfers (-1 unreached) and earliest arrival tick.
type refProfile struct {
	hops    []int
	arrival []streach.Tick
}

// referenceProfile relaxes the contact network tick by tick — an
// implementation deliberately separate from internal/queries' oracle.
func referenceProfile(cn *streach.ContactNetwork, src streach.ObjectID, iv streach.Interval, budget int) refProfile {
	n := cn.NumObjects()
	p := refProfile{hops: make([]int, n), arrival: make([]streach.Tick, n)}
	for i := range p.hops {
		p.hops[i] = -1
		p.arrival[i] = -1
	}
	lo, hi := iv.Lo, iv.Hi
	if lo < 0 {
		lo = 0
	}
	if hi > streach.Tick(cn.NumTicks()-1) {
		hi = streach.Tick(cn.NumTicks() - 1)
	}
	if hi < lo {
		return p
	}
	if budget <= 0 {
		budget = int(^uint(0) >> 2)
	}
	p.hops[src], p.arrival[src] = 0, lo
	contacts := cn.All()
	for t := lo; t <= hi; t++ {
		var pairs [][2]streach.ObjectID
		for _, c := range contacts {
			if c.Validity.Contains(t) {
				pairs = append(pairs, [2]streach.ObjectID{c.A, c.B})
			}
		}
		for changed := true; changed; {
			changed = false
			relax := func(a, b streach.ObjectID) {
				if p.hops[a] < 0 || p.hops[a] >= budget {
					return
				}
				if p.hops[b] >= 0 && p.hops[b] <= p.hops[a]+1 {
					return
				}
				if p.hops[b] < 0 {
					p.arrival[b] = t
				}
				p.hops[b] = p.hops[a] + 1
				changed = true
			}
			for _, pr := range pairs {
				relax(pr[0], pr[1])
				relax(pr[1], pr[0])
			}
		}
	}
	return p
}

// referenceTopK ranks a reference profile exactly as TopKReachable
// documents: weight descending, arrival ascending, object ascending, src
// excluded.
func referenceTopK(p refProfile, src streach.ObjectID, k int, decay float64) []streach.Ranked {
	var items []streach.Ranked
	for o := range p.hops {
		if p.hops[o] < 0 || streach.ObjectID(o) == src {
			continue
		}
		items = append(items, streach.Ranked{
			Object:  streach.ObjectID(o),
			Hops:    p.hops[o],
			Arrival: p.arrival[o],
			Weight:  math.Pow(decay, float64(p.hops[o])),
		})
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.Object < b.Object
	})
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func semanticsDataset(t testing.TB) *streach.Dataset {
	t.Helper()
	return streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 40, NumTicks: 180, Seed: 11,
	})
}

// semanticsBackends lists every registry backend plus the segmented
// variants under a deliberately odd slab width (boundaries land inside
// query intervals).
func semanticsBackends() ([]string, streach.Options) {
	names := streach.Backends()
	return names, streach.Options{SegmentTicks: 37}
}

func TestSemanticsConformance(t *testing.T) {
	ds := semanticsDataset(t)
	cn := ds.Contacts()
	names, opts := semanticsBackends()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
		Count: 18, MinLen: 25, MaxLen: 120, Seed: 5,
	})
	ctx := context.Background()

	// hop-tracking capability per backend (native or via fallback the
	// answers must match; Native flags are checked separately).
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := streach.Open(name, ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range work {
				ref := referenceProfile(cn, q.Src, q.Interval, 0)

				// Earliest arrival.
				ar, err := e.EarliestArrival(ctx, q.Src, q.Dst, q.Interval)
				if err != nil {
					t.Fatalf("q%d EarliestArrival: %v", qi, err)
				}
				wantReach := ref.hops[q.Dst] >= 0
				if ar.Reachable != wantReach {
					t.Fatalf("q%d %v: EarliestArrival reachable=%v, reference %v", qi, q, ar.Reachable, wantReach)
				}
				if wantReach && ar.Arrival != ref.arrival[q.Dst] {
					t.Fatalf("q%d %v: arrival %d, reference %d", qi, q, ar.Arrival, ref.arrival[q.Dst])
				}
				if ar.Hops >= 0 {
					// Hops are exact as of the arrival tick (chains after
					// arrival may be shorter): compare against the prefix
					// profile ending at the arrival.
					pref := referenceProfile(cn, q.Src, streach.NewInterval(q.Interval.Lo, ar.Arrival), 0)
					if ar.Hops != pref.hops[q.Dst] {
						t.Fatalf("q%d %v: hops %d, reference-at-arrival %d", qi, q, ar.Hops, pref.hops[q.Dst])
					}
				}

				// Hop-bounded reachability, tight and loose budgets.
				for _, maxHops := range []int{1, 2, 5} {
					bq := q
					bq.Semantics = streach.Semantics{MaxHops: maxHops}
					r, err := e.Reachable(ctx, bq)
					if err != nil {
						t.Fatalf("q%d hop-bounded(%d): %v", qi, maxHops, err)
					}
					bref := referenceProfile(cn, q.Src, q.Interval, maxHops)
					want := bref.hops[q.Dst] >= 0
					if r.Reachable != want {
						t.Fatalf("q%d %v maxHops=%d: got %v, reference %v", qi, q, maxHops, r.Reachable, want)
					}
					if want {
						if r.Arrival != bref.arrival[q.Dst] {
							t.Fatalf("q%d %v maxHops=%d: arrival %d, reference %d", qi, q, maxHops, r.Arrival, bref.arrival[q.Dst])
						}
						pref := referenceProfile(cn, q.Src, streach.NewInterval(q.Interval.Lo, r.Arrival), maxHops)
						if r.Hops != pref.hops[q.Dst] {
							t.Fatalf("q%d maxHops=%d: hops %d, reference-at-arrival %d", qi, maxHops, r.Hops, pref.hops[q.Dst])
						}
					}
				}

				// Plain boolean must agree with the unbounded semantic
				// answer (the two paths share ground truth).
				pr, err := e.Reachable(ctx, q)
				if err != nil {
					t.Fatalf("q%d boolean: %v", qi, err)
				}
				if pr.Reachable != wantReach {
					t.Fatalf("q%d: boolean %v disagrees with semantic reference %v", qi, pr.Reachable, wantReach)
				}
			}

			// Top-k decay on a few sources over a mid-size interval.
			iv := streach.NewInterval(20, 130)
			for src := streach.ObjectID(0); src < 6; src++ {
				ref := referenceProfile(cn, src, iv, 0)
				want := referenceTopK(ref, src, 7, 0.7)
				got, err := e.TopKReachable(ctx, src, iv, 7, 0.7)
				if err != nil {
					t.Fatalf("TopK src=%d: %v", src, err)
				}
				if len(got.Items) != len(want) {
					t.Fatalf("TopK src=%d: %d items, reference %d", src, len(got.Items), len(want))
				}
				for i := range want {
					if got.Items[i] != want[i] {
						t.Fatalf("TopK src=%d item %d: got %+v, reference %+v", src, i, got.Items[i], want[i])
					}
				}
			}
		})
	}
}

// TestSemanticsNativeMatrix pins which backends answer each semantics
// class natively and which fall back to the oracle.
func TestSemanticsNativeMatrix(t *testing.T) {
	ds := semanticsDataset(t)
	_, opts := semanticsBackends()
	ctx := context.Background()
	iv := streach.NewInterval(10, 90)

	arrivalNative := map[string]bool{
		"oracle": true, "reachgrid": true,
		"reachgraph": true, "reachgraph-bbfs": true, "reachgraph-ebfs": true, "reachgraph-edfs": true,
		"reachgraph-mem":   true,
		"segmented:oracle": true, "segmented:reachgrid": true,
		"segmented:reachgraph": true, "segmented:reachgraph-mem": true,
		// Bidirectional planning covers boolean point queries only; the
		// semantics layer routes through the same forward planner as the
		// segmented backends, so native-ness matches them.
		"bidir:oracle": true, "bidir:reachgraph": true, "bidir:reachgraph-mem": true,
		// The scatter-gather relaxation exchanges exact arrival ticks
		// across the shard cut, so arrival queries stay native; hop
		// tracking does not compose across shards and falls back.
		"shard:1:reachgraph": true, "shard:2:reachgraph": true, "shard:4:reachgraph": true,
		"shard:1:spatial:reachgraph": true, "shard:2:spatial:reachgraph": true, "shard:4:spatial:reachgraph": true,
		// The uncertain wrappers evaluate every spec over their own decoded
		// contact store, whatever the base supports.
		"uncertain:oracle": true, "uncertain:reachgraph": true,
		"spj": false, "grail": false, "grail-mem": false,
	}
	hopNative := map[string]bool{
		"oracle": true, "reachgrid": true,
		"segmented:oracle": true, "segmented:reachgrid": true,
		"bidir:oracle":     true,
		"uncertain:oracle": true, "uncertain:reachgraph": true,
	}
	for _, name := range streach.Backends() {
		e, err := streach.Open(name, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := e.EarliestArrival(ctx, 0, 1, iv)
		if err != nil {
			t.Fatal(err)
		}
		if want := arrivalNative[name]; ar.Native != want {
			t.Errorf("%s: EarliestArrival native=%v, want %v", name, ar.Native, want)
		}
		tk, err := e.TopKReachable(ctx, 0, iv, 3, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if want := hopNative[name]; tk.Native != want {
			t.Errorf("%s: TopKReachable native=%v, want %v", name, tk.Native, want)
		}
		hb, err := e.Reachable(ctx, streach.Query{Src: 0, Dst: 1, Interval: iv,
			Semantics: streach.Semantics{MaxHops: 3}})
		if err != nil {
			t.Fatal(err)
		}
		if want := hopNative[name]; hb.Native != want {
			t.Errorf("%s: hop-bounded native=%v, want %v", name, hb.Native, want)
		}
	}
}

// TestSemanticsLiveEngine replays the dataset into LiveEngines and checks
// the semantic answers over the ingested feed against the reference.
func TestSemanticsLiveEngine(t *testing.T) {
	ds := semanticsDataset(t)
	cn := ds.Contacts()
	ctx := context.Background()
	for _, base := range []string{"oracle", "reachgraph-mem", "reachgraph"} {
		base := base
		t.Run(base, func(t *testing.T) {
			le, err := streach.NewLiveEngine(base, ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{SegmentTicks: 37})
			if err != nil {
				t.Fatal(err)
			}
			positions := make([]streach.Point, ds.NumObjects())
			for tk := 0; tk < ds.NumTicks(); tk++ {
				for o := range positions {
					positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
				}
				if err := le.AddInstant(positions); err != nil {
					t.Fatal(err)
				}
			}
			iv := streach.NewInterval(15, 140)
			for src := streach.ObjectID(0); src < 5; src++ {
				ref := referenceProfile(cn, src, iv, 0)
				for dst := streach.ObjectID(0); dst < streach.ObjectID(ds.NumObjects()); dst += 7 {
					ar, err := le.EarliestArrival(ctx, src, dst, iv)
					if err != nil {
						t.Fatal(err)
					}
					wantReach := ref.hops[dst] >= 0
					if src == dst {
						wantReach = true
					}
					if ar.Reachable != wantReach {
						t.Fatalf("src=%d dst=%d: reachable %v, reference %v", src, dst, ar.Reachable, wantReach)
					}
					if ar.Reachable && dst != src && ar.Arrival != ref.arrival[dst] {
						t.Fatalf("src=%d dst=%d: arrival %d, reference %d", src, dst, ar.Arrival, ref.arrival[dst])
					}
				}
				want := referenceTopK(ref, src, 5, 0.8)
				got, err := le.TopKReachable(ctx, src, iv, 5, 0.8)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(got.Items) != fmt.Sprint(want) {
					t.Fatalf("src=%d: top-k %v, reference %v", src, got.Items, want)
				}
				// Hop-bounded point queries route through the semantics
				// layer on LiveEngine too.
				for _, maxHops := range []int{1, 3} {
					bref := referenceProfile(cn, src, iv, maxHops)
					for dst := streach.ObjectID(0); dst < streach.ObjectID(ds.NumObjects()); dst += 11 {
						r, err := le.Reachable(ctx, streach.Query{Src: src, Dst: dst, Interval: iv,
							Semantics: streach.Semantics{MaxHops: maxHops}})
						if err != nil {
							t.Fatal(err)
						}
						if want := bref.hops[dst] >= 0; r.Reachable != want {
							t.Fatalf("src=%d dst=%d maxHops=%d: got %v, reference %v",
								src, dst, maxHops, r.Reachable, want)
						}
					}
				}
			}
		})
	}
}
