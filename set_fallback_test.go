package streach_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"streach"
)

// set_fallback_test.go is the regression suite for the engine's
// set-via-point-queries fallback (backends without a native reachable-set
// primitive): cancelling the context between per-destination point queries
// must abort promptly, and the I/O accounting must stay balanced — the
// cancelled set query charges the cumulative totals for the pages it
// actually read (and returns no delta), while later successful queries'
// deltas sum exactly on top. Nothing may be double-counted.

// cancelAfterCtx reports Canceled from its Nth Err() call on, making
// mid-set cancellation deterministic (the fallback loop polls Err between
// destinations).
type cancelAfterCtx struct {
	context.Context
	remaining atomic.Int32
}

func cancelAfter(n int32) *cancelAfterCtx {
	c := &cancelAfterCtx{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *cancelAfterCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestSetFallbackCancelAccounting(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 32, NumTicks: 120, Seed: 9,
	})
	iv := streach.NewInterval(0, 100)
	// Disk-resident backends that answer sets through the point-query
	// fallback.
	for _, name := range []string{"grail", "reachgraph"} {
		name := name
		t.Run(name, func(t *testing.T) {
			pool := streach.NewBufferPool(64)
			e, err := streach.Open(name, ds, streach.Options{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			base := pool.Stats()

			// Cancel deep inside the destination loop: the entry check and
			// a handful of point queries run, then Err flips.
			_, err = e.ReachableSet(cancelAfter(8), 0, iv)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-set cancel: got %v, want context.Canceled", err)
			}
			afterCancel := e.IOTotals()
			if afterCancel.RandomReads+afterCancel.SequentialReads == 0 {
				t.Fatal("cancelled set charged no I/O at all; cancellation fired before any query ran")
			}
			// The cancelled query's partial charges must already be
			// consistent with the pool: totals count exactly the pool
			// misses, hits exactly the pool hits.
			ps := pool.Stats()
			if got, want := afterCancel.RandomReads+afterCancel.SequentialReads, ps.Misses-base.Misses; got != want {
				t.Fatalf("after cancel: totals count %d page fetches, pool saw %d misses", got, want)
			}
			if got, want := afterCancel.BufferHits, ps.Hits-base.Hits; got != want {
				t.Fatalf("after cancel: totals count %d hits, pool saw %d", got, want)
			}

			// A successful set query after the cancellation: its delta must
			// sum exactly onto the totals (no double count of the per-point
			// charges into the one set-query accountant).
			r, err := e.ReachableSet(context.Background(), 0, iv)
			if err != nil {
				t.Fatal(err)
			}
			after := e.IOTotals()
			if got, want := after.RandomReads-afterCancel.RandomReads, r.IO.RandomReads; got != want {
				t.Fatalf("set delta random=%d but totals moved by %d", want, got)
			}
			if got, want := after.SequentialReads-afterCancel.SequentialReads, r.IO.SequentialReads; got != want {
				t.Fatalf("set delta sequential=%d but totals moved by %d", want, got)
			}
			if got, want := after.BufferHits-afterCancel.BufferHits, r.IO.BufferHits; got != want {
				t.Fatalf("set delta hits=%d but totals moved by %d", want, got)
			}
			ps = pool.Stats()
			if got, want := after.RandomReads+after.SequentialReads, ps.Misses-base.Misses; got != want {
				t.Fatalf("after success: totals count %d page fetches, pool saw %d misses", got, want)
			}

			// The fallback answer itself must match the oracle.
			oracle, err := streach.Open("oracle", ds, streach.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.ReachableSet(context.Background(), 0, iv)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Objects) != len(want.Objects) {
				t.Fatalf("fallback set %v, oracle %v", r.Objects, want.Objects)
			}
		})
	}
}

// TestSetFallbackPreCancelled asserts the entry check: a context cancelled
// before the call evaluates nothing and charges nothing.
func TestSetFallbackPreCancelled(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 16, NumTicks: 60, Seed: 10,
	})
	e, err := streach.Open("grail", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ReachableSet(ctx, 0, streach.NewInterval(0, 50)); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if tot := e.IOTotals(); tot.RandomReads+tot.SequentialReads+tot.BufferHits != 0 {
		t.Fatalf("pre-cancelled set still charged I/O: %+v", tot)
	}
}
