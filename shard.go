// Sharded engines and the scatter-gather frontier planner.
//
// A sharded backend ("shard:<K>:<base>", or "shard:<K>:spatial:<base>" for
// the grid-cut partitioner) splits the object population into K shards
// (internal/shard) and opens one child engine of the base backend per shard
// over that shard's sub-network — every contact incident to at least one
// shard-owned object, cross-shard contacts duplicated into both endpoint
// shards. Each disk-resident child owns a private BufferPool (unless the
// caller supplies a shared Options.Pool) and, for segmented bases, its own
// slab chain, so shards are independent engines end to end.
//
// Queries run as a scatter-gather relaxation over exact per-shard arrival
// profiles. The coordinator keeps a global best-arrival table and a pending
// set of (object, arrival) improvements; each round it groups the pending
// objects by owning shard and scatters ONE expansion per shard — the
// child's native semantic profile over [earliest arrival, iv.Hi] with every
// pending object activating at its own arrival tick (SeedState.Start), run
// concurrently across shards with the bounded-worker pattern of
// parallelSweep — then gathers the per-shard profiles and exchanges only
// the boundary objects whose global arrival improved and whose owner is
// another shard. Correctness rests on the ownership
// invariant of the cut: shard s's sub-network contains every contact
// incident to an s-owned object, so one owner-side expansion from an
// object's best arrival covers everything reachable through that object —
// an improvement discovered by the owner itself needs no re-expansion
// (the discovering sweep already continued through it), and a foreign
// discovery needs exactly one hand-off to the owner. Arrivals only ever
// decrease and are bounded below by the interval start, so the relaxation
// terminates; because every recorded arrival is realized by a concatenation
// of within-shard propagation chains (sub-networks are subsets of the full
// network) and every optimal chain is covered link by link by owner
// expansions, the fixpoint equals the true earliest-arrival profile. With a
// destination early-exit the rounds additionally prune pending objects that
// cannot beat the destination's best-known arrival: an expansion seeded at
// tick t only produces arrivals >= t.
//
// Each expansion worker charges a private pagefile.Stats accountant; the
// gather step sums every worker's accountant into the query's — including
// failed workers, whose page reads already hit the store totals — so the
// engine invariant delta == total == pool stays exact under sharding.
// Single-shard coordinators ("shard:1:<base>") delegate point queries
// straight to their only child, preserving the allocation-free serial path.

package streach

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/shard"
	"streach/internal/visit"
)

// shardCore is the coordinator engineCore of a sharded backend: K child
// engines over the per-shard sub-networks plus the scatter-gather planner.
// Children are immutable after construction, so queries run fully in
// parallel like every other registry engine.
type shardCore struct {
	base     string
	assign   *shard.Assignment
	children []engineCore
	sems     []semCore
	// pools holds the per-shard private buffer pools ("each shard its own
	// BufferPool"); nil entries when the base is memory-resident or when a
	// caller-shared Options.Pool backs every child instead.
	pools      []*BufferPool
	numObjects int
	numTicks   int
	// parallelism is the scatter worker budget: Options.QueryParallelism
	// when positive, otherwise one worker per shard — sharded expansion is
	// concurrent by default, that is the point of the partition.
	parallelism int

	// Partition-quality counters, fixed at build time.
	crossRatio    float64
	crossContacts int
	partObjects   []int
	partContacts  []int

	// crossFrontier counts the boundary objects handed across the shard
	// cut by queries — the dynamic scatter-gather traffic metric.
	crossFrontier atomic.Int64
}

// hopAgnostic is the semantic spec every scatter-gather expansion runs
// under: unbounded transfers, no hop tracking. Mid-interval shard hand-offs
// carry only arrival ticks; jointly-minimal (arrival, hops) labels do not
// compose across shards, so hop-tracking specs fall back to the oracle.
var hopAgnostic = semSpec{budget: queries.UnboundedHops}

func (c *shardCore) par() int {
	if c.parallelism > 0 {
		return c.parallelism
	}
	return c.assign.K
}

func (c *shardCore) reach(ctx context.Context, q Query, acct *pagefile.Stats) (bool, int, error) {
	if len(c.children) == 1 {
		// Single shard: the child sees the whole network; its native point
		// query (including a bidir base's planner) is the serial fast path.
		return c.children[0].reach(ctx, q, acct)
	}
	if err := validatePlanIDs(c.numObjects, q.Src, q.Dst); err != nil {
		return false, 0, err
	}
	iv := clampDomain(q.Interval, c.numTicks)
	if c.numTicks == 0 || iv.Len() == 0 {
		return false, 0, nil
	}
	if q.Src == q.Dst {
		return true, 0, nil
	}
	sc := semPool.Get()
	defer semPool.Put(sc)
	sc.seeds = append(sc.seeds[:0], queries.SeedState{Obj: q.Src})
	entries, n, err := planShardProfile(ctx, c.sems, c.assign, c.numObjects, c.numTicks,
		sc.entries[:0], sc.seeds, iv, hopAgnostic, q.Dst, c.par(), acct, &c.crossFrontier)
	sc.entries = entries
	if err != nil {
		return false, n, err
	}
	_, ok := findEntry(entries, q.Dst)
	return ok, n, nil
}

func (c *shardCore) reachSet(ctx context.Context, src ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, error) {
	if len(c.children) == 1 {
		objs, err := c.children[0].reachSet(ctx, src, iv, acct)
		if err == nil || !errors.Is(err, errNoNativeSet) {
			return objs, err
		}
		// No native set primitive on the child: fall through to the
		// relaxation, which degenerates to one arrival sweep — far cheaper
		// than the engine's per-object point-query fallback.
	}
	if err := validatePlanIDs(c.numObjects, src, src); err != nil {
		return nil, err
	}
	sc := semPool.Get()
	defer semPool.Put(sc)
	sc.seeds = append(sc.seeds[:0], queries.SeedState{Obj: src})
	entries, _, err := planShardProfile(ctx, c.sems, c.assign, c.numObjects, c.numTicks,
		sc.entries[:0], sc.seeds, iv, hopAgnostic, queries.NoObject, c.par(), acct, &c.crossFrontier)
	sc.entries = entries
	if err != nil {
		return nil, err
	}
	objs := make([]ObjectID, len(entries))
	for i, en := range entries {
		objs[i] = en.Obj
	}
	return objs, nil
}

func (c *shardCore) semSupports(spec semSpec) bool {
	if spec.tracksHops() {
		return false
	}
	for _, s := range c.sems {
		if !s.semSupports(spec) {
			return false
		}
	}
	return true
}

func (c *shardCore) semProfile(ctx context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	if len(c.children) == 1 {
		return c.sems[0].semProfile(ctx, dst, seeds, iv, spec, earlyDst, acct)
	}
	return planShardProfile(ctx, c.sems, c.assign, c.numObjects, c.numTicks,
		dst, seeds, iv, spec, earlyDst, c.par(), acct, &c.crossFrontier)
}

func (c *shardCore) ioTotals() pagefile.Stats {
	var sum pagefile.Stats
	for _, ch := range c.children {
		sum.Add(ch.ioTotals())
	}
	return sum
}

func (c *shardCore) resetIO() {
	for _, ch := range c.children {
		ch.resetIO()
	}
}

func (c *shardCore) indexBytes() int64 {
	var sum int64
	for _, ch := range c.children {
		sum += ch.indexBytes()
	}
	return sum
}

func (c *shardCore) dropCache() {
	for _, ch := range c.children {
		ch.dropCache()
	}
}

func (c *shardCore) shardStats() []ShardStats {
	out := make([]ShardStats, len(c.children))
	for s, ch := range c.children {
		out[s] = ShardStats{
			Shard:      s,
			Objects:    c.partObjects[s],
			Contacts:   c.partContacts[s],
			IndexBytes: ch.indexBytes(),
			IO:         statsOf(ch.ioTotals()),
		}
	}
	return out
}

// fillStats populates the sharding surface of an EngineStats snapshot.
func (c *shardCore) fillStats(st *EngineStats) {
	st.Shards = c.assign.K
	st.Partitioner = c.assign.Partitioner
	st.CrossShardRatio = c.crossRatio
	st.CrossShardFrontier = c.crossFrontier.Load()
	st.ShardDetails = c.shardStats()
	if !st.HasPool {
		// Per-shard private pools: report their summed counters so the
		// serving layer sees one pool surface either way.
		for _, p := range c.pools {
			if p == nil {
				continue
			}
			ps := p.Stats()
			st.HasPool = true
			st.Pool.Hits += ps.Hits
			st.Pool.Misses += ps.Misses
			st.Pool.Evictions += ps.Evictions
			st.Pool.Resident += ps.Resident
			st.Pool.Capacity += ps.Capacity
		}
	}
}

// shardEngine wraps the uniform engine with the Sharded surface.
type shardEngine struct {
	*engine
	sh *shardCore
}

func (e *shardEngine) Stats() EngineStats {
	st := e.engine.Stats()
	e.sh.fillStats(&st)
	return st
}

func (e *shardEngine) ShardStats() []ShardStats { return e.sh.shardStats() }

// --- the scatter-gather relaxation planner ---

// shardPlanScratch is the pooled working state of one scatter-gather query:
// the global best-arrival table, the reached-object list, the pending and
// next-round hand-off buffers, and the task list of one round.
type shardPlanScratch struct {
	arrival visit.Ticks
	reached []ObjectID
	pend    []ObjectID
	next    []ObjectID
	tasks   []shardPlanTask
}

// shardPlanTask is one owner-side expansion: the pending objects
// pend[lo:hi], all owned by shard part with best arrival t.
type shardPlanTask struct {
	part   int
	t      Tick
	lo, hi int
}

var shardPlanPool = visit.NewPool(func() *shardPlanScratch { return new(shardPlanScratch) })

// shardTaskResult collects one expansion worker's output; the private
// accountant is summed into the query's after the join even on failure
// (the reads already hit the store totals).
type shardTaskResult struct {
	entries []queries.ProfileEntry
	n       int
	io      pagefile.Stats
	err     error
}

// planShardProfile is the scatter-gather relaxation over per-shard semantic
// evaluators; see the package comment for the algorithm and its exactness
// argument. parts[s] evaluates arrival profiles over shard s's sub-network;
// spec must be hop-agnostic (callers gate on semSupports). The profile is
// appended to dst sorted by object with hop counts normalized to -1; with a
// valid earlyDst it may be partial, but earlyDst's entry is exact. Every
// boundary hand-off increments crossFrontier.
func planShardProfile(ctx context.Context, parts []semCore, assign *shard.Assignment, numObjects, numTicks int,
	dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID,
	par int, acct *pagefile.Stats, crossFrontier *atomic.Int64) ([]queries.ProfileEntry, int, error) {

	iv = clampDomain(iv, numTicks)
	if numTicks == 0 || iv.Len() == 0 {
		return dst, 0, nil
	}
	ps := shardPlanPool.Get()
	defer shardPlanPool.Put(ps)
	ps.arrival.Reset(numObjects)
	ps.reached = ps.reached[:0]
	ps.pend = ps.pend[:0]
	for _, s := range seeds {
		if int(s.Obj) < 0 || int(s.Obj) >= numObjects {
			continue
		}
		if _, ok := ps.arrival.Get(int(s.Obj)); !ok {
			ps.arrival.Set(int(s.Obj), int32(iv.Lo))
			ps.reached = append(ps.reached, s.Obj)
			ps.pend = append(ps.pend, s.Obj)
		}
	}
	hasEarly := int(earlyDst) >= 0 && int(earlyDst) < numObjects
	var cross int64
	defer func() {
		if cross > 0 && crossFrontier != nil {
			crossFrontier.Add(cross)
		}
	}()
	expanded := 0
	for len(ps.pend) > 0 {
		if err := ctx.Err(); err != nil {
			return dst, expanded, err
		}
		// Group the pending hand-offs into one task per owner — every
		// pending object rides the same owner-side sweep, activating at its
		// own best-known arrival — pruning objects that can no longer
		// improve the destination. Sorting by (owner, arrival) makes each
		// owner's run contiguous with its earliest arrival first, which
		// becomes the task's sweep start.
		sort.Slice(ps.pend, func(i, j int) bool {
			a, b := ps.pend[i], ps.pend[j]
			oa, ob := assign.Owner(a), assign.Owner(b)
			if oa != ob {
				return oa < ob
			}
			ta, _ := ps.arrival.Get(int(a))
			tb, _ := ps.arrival.Get(int(b))
			if ta != tb {
				return ta < tb
			}
			return a < b
		})
		bestDst := int32(-1)
		if hasEarly {
			if v, ok := ps.arrival.Get(int(earlyDst)); ok {
				bestDst = v
			}
		}
		ps.tasks = ps.tasks[:0]
		w := 0
		for i := 0; i < len(ps.pend); i++ {
			o := ps.pend[i]
			if i > 0 && o == ps.pend[i-1] {
				continue // improved twice before expansion: expand once
			}
			t, _ := ps.arrival.Get(int(o))
			if bestDst >= 0 && t >= bestDst {
				continue // cannot beat the destination's known arrival
			}
			owner := assign.Owner(o)
			if n := len(ps.tasks); n > 0 && ps.tasks[n-1].part == owner {
				ps.pend[w] = o
				w++
				ps.tasks[n-1].hi = w
				continue
			}
			ps.pend[w] = o
			w++
			ps.tasks = append(ps.tasks, shardPlanTask{part: owner, t: Tick(t), lo: w - 1, hi: w})
		}
		ps.pend = ps.pend[:w]
		if len(ps.tasks) == 0 {
			break
		}
		// Scatter: expand every task on its owner, concurrently up to the
		// worker budget; workers charge private accountants.
		results := make([]shardTaskResult, len(ps.tasks))
		workers := par
		if workers > len(ps.tasks) {
			workers = len(ps.tasks)
		}
		if workers <= 1 {
			for i := range ps.tasks {
				runShardTask(ctx, parts, ps, &ps.tasks[i], &results[i], iv, spec, earlyDst)
			}
		} else {
			var wg sync.WaitGroup
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					for i := wk; i < len(ps.tasks); i += workers {
						runShardTask(ctx, parts, ps, &ps.tasks[i], &results[i], iv, spec, earlyDst)
					}
				}(wk)
			}
			wg.Wait()
		}
		// Gather: merge the per-shard profiles into the global arrival
		// table; only improvements owned by a different shard than the one
		// that discovered them re-enter the pending set (the discovering
		// sweep already expanded owner-local improvements exhaustively).
		ps.next = ps.next[:0]
		var firstErr error
		for i := range ps.tasks {
			r := &results[i]
			expanded += r.n
			if acct != nil {
				acct.Add(r.io)
			}
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
			if firstErr != nil {
				continue
			}
			for _, en := range r.entries {
				cur, ok := ps.arrival.Get(int(en.Obj))
				if ok && int32(en.Arrival) >= cur {
					continue
				}
				ps.arrival.Set(int(en.Obj), int32(en.Arrival))
				if !ok {
					ps.reached = append(ps.reached, en.Obj)
				}
				if assign.Owner(en.Obj) != ps.tasks[i].part {
					ps.next = append(ps.next, en.Obj)
					cross++
				}
			}
		}
		if firstErr != nil {
			return dst, expanded, firstErr
		}
		ps.pend, ps.next = ps.next, ps.pend
	}
	list := sortDedupObjects(ps.reached)
	for _, o := range list {
		arr, _ := ps.arrival.Get(int(o))
		dst = append(dst, queries.ProfileEntry{Obj: o, Hops: -1, Arrival: Tick(arr)})
	}
	return dst, expanded, nil
}

// runShardTask evaluates one owner-side expansion: the task's pending
// objects seed the owner's semantic profile over [earliest arrival, iv.Hi],
// each seed activating at its own best-known arrival tick (SeedState.Start),
// so the whole round costs one sweep per shard. Child profiles are
// global-tick (children index the full time domain), so no re-basing
// happens on gather. The arrival table is read-only during the scatter
// phase; gather mutates it only after the workers join.
func runShardTask(ctx context.Context, parts []semCore, ps *shardPlanScratch, task *shardPlanTask, r *shardTaskResult, iv Interval, spec semSpec, earlyDst ObjectID) {
	seeds := make([]queries.SeedState, 0, task.hi-task.lo)
	for _, o := range ps.pend[task.lo:task.hi] {
		t, _ := ps.arrival.Get(int(o))
		seeds = append(seeds, queries.SeedState{Obj: o, Start: Tick(t)})
	}
	r.entries, r.n, r.err = parts[task.part].semProfile(ctx, nil, seeds,
		Interval{Lo: task.t, Hi: iv.Hi}, spec, earlyDst, &r.io)
}

// --- registration ---

// shardName returns the canonical registry name of a sharded backend: the
// hash partitioner is the unnamed default, spatial is spelled out.
func shardName(k int, partitioner, base string) string {
	if partitioner == "spatial" {
		return fmt.Sprintf("shard:%d:spatial:%s", k, base)
	}
	return fmt.Sprintf("shard:%d:%s", k, base)
}

// parseShardName splits "shard:<K>[:hash|:spatial]:<base>"; ok is false for
// anything else (including nested shard bases).
func parseShardName(name string) (k int, partitioner, base string, ok bool) {
	rest, found := strings.CutPrefix(name, "shard:")
	if !found {
		return 0, "", "", false
	}
	kStr, rest, found := strings.Cut(rest, ":")
	if !found {
		return 0, "", "", false
	}
	k, err := strconv.Atoi(kStr)
	if err != nil || k < 1 {
		return 0, "", "", false
	}
	partitioner = "hash"
	if p, after, found := strings.Cut(rest, ":"); found && (p == "hash" || p == "spatial") {
		partitioner, rest = p, after
	}
	if rest == "" || strings.HasPrefix(rest, "shard:") {
		return 0, "", "", false
	}
	return k, partitioner, rest, true
}

// shardSpec synthesizes the registry entry of a sharded backend name,
// resolving the base against the static registry — any shard count and any
// contact-sourced base compose dynamically, not just the pre-registered
// points. ownPool marks the spec so Open leaves pool materialization to
// buildShardCore (per-shard private pools unless the caller shares one).
func shardSpec(name string) (backendSpec, bool) {
	k, partitioner, base, ok := parseShardName(name)
	if !ok {
		return backendSpec{}, false
	}
	base = strings.ToLower(strings.TrimSpace(base))
	if alias, ok := aliases[base]; ok {
		base = alias
	}
	baseSpec, ok := registry[base]
	if !ok {
		return backendSpec{}, false
	}
	canonical := shardName(k, partitioner, base)
	return backendSpec{
		info: BackendInfo{
			Name: canonical,
			Description: fmt.Sprintf("%d-way %s-partitioned %s shards with a scatter-gather frontier planner",
				k, partitioner, base),
			DiskResident:      baseSpec.info.DiskResident,
			NeedsTrajectories: partitioner == "spatial",
		},
		ownPool: true,
		open: func(src Source, opts Options) (engineCore, error) {
			return buildShardCore(k, partitioner, base, src, opts)
		},
	}, true
}

// shardPoints are the pre-registered shard configurations over the flagship
// disk backend; every other (K, partitioner, base) combination resolves
// dynamically through lookupSpec.
var shardPoints = []struct {
	k           int
	partitioner string
}{
	{1, "hash"}, {2, "hash"}, {4, "hash"},
	{1, "spatial"}, {2, "spatial"}, {4, "spatial"},
}

func init() {
	for _, p := range shardPoints {
		name := shardName(p.k, p.partitioner, "reachgraph")
		registry[name] = backendSpec{
			info: BackendInfo{
				Name: name,
				Description: fmt.Sprintf("%d-way %s-partitioned reachgraph shards with a scatter-gather frontier planner",
					p.k, p.partitioner),
				DiskResident:      true,
				NeedsTrajectories: p.partitioner == "spatial",
			},
			ownPool: true,
			open: func(src Source, opts Options) (engineCore, error) {
				return buildShardCore(p.k, p.partitioner, "reachgraph", src, opts)
			},
		}
	}
}

// buildShardCore partitions the source, cuts the contact network and opens
// one base-backend child per shard. Disk-resident children each get a
// private buffer pool of the configured page budget unless the caller
// supplied a shared Options.Pool; segmented bases then window their own
// slab chains inside each shard.
func buildShardCore(k int, partitioner, base string, src Source, opts Options) (engineCore, error) {
	baseSpec, ok := registry[base]
	if !ok {
		return nil, fmt.Errorf("%w %q (shard base)", ErrUnknownBackend, base)
	}
	if baseSpec.info.NeedsTrajectories {
		return nil, fmt.Errorf("streach: shard base %q indexes trajectories; shard children build from per-shard contact networks", base)
	}
	numObjects, numTicks := sourceDims(src)
	if numTicks == 0 {
		return nil, fmt.Errorf("streach: shard %q: empty time domain", base)
	}
	var assign *shard.Assignment
	var err error
	if partitioner == "spatial" {
		ds := src.sourceDataset()
		if ds == nil {
			return nil, fmt.Errorf("streach: spatial partitioner: %w", ErrNeedsTrajectories)
		}
		assign, err = shard.Spatial(ds.d, k)
	} else {
		assign, err = shard.Hash(numObjects, k)
	}
	if err != nil {
		return nil, err
	}
	split := shard.Cut(src.sourceContacts().net, assign)
	core := &shardCore{
		base:          base,
		assign:        assign,
		numObjects:    numObjects,
		numTicks:      numTicks,
		parallelism:   opts.QueryParallelism,
		crossRatio:    split.CrossRatio(),
		crossContacts: split.CrossContacts,
		pools:         make([]*BufferPool, k),
		partObjects:   make([]int, k),
		partContacts:  make([]int, k),
	}
	for s := 0; s < k; s++ {
		core.partObjects[s] = assign.Objects(s)
		core.partContacts[s] = len(split.Parts[s].Contacts)
		childOpts := opts
		if baseSpec.info.DiskResident && opts.Pool == nil {
			pages := opts.PoolPages
			if pages == 0 {
				pages = 64
			}
			if pages > 0 {
				core.pools[s] = NewBufferPool(pages)
				childOpts.Pool = core.pools[s]
			}
		}
		child, err := baseSpec.open(&ContactNetwork{net: split.Parts[s]}, childOpts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		sem, ok := child.(semCore)
		if !ok || !sem.semSupports(hopAgnostic) {
			return nil, fmt.Errorf("streach: backend %q has no scatter-gather entry points", base)
		}
		core.children = append(core.children, child)
		core.sems = append(core.sems, sem)
	}
	return core, nil
}
