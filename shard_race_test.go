package streach_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"streach"
)

// TestShardScatterGatherRaceWithIngest drives scatter-gather queries
// through a hash-sharded live engine — every shard expanding concurrently
// on its own ingest lane — while the appender seals lanes and drops late
// events behind the frontier (run under -race in CI). All lanes draw on one
// shared buffer pool, and the per-shard accountants summed into each
// query's delta must match the pool's counter movement exactly: delta ==
// total == pool, even while sealing builds run.
func TestShardScatterGatherRaceWithIngest(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 192, NumTicks: 200, Seed: 77,
	})
	fullOracle := ds.Contacts().Oracle()
	pool := streach.NewBufferPool(128)
	le, err := streach.NewLiveEngine("shard:4:reachgraph", ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{
		SegmentTicks:     24,
		QueryParallelism: runtime.GOMAXPROCS(0),
		Pool:             pool,
		CompactEvents:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	const stablePrefix = 120
	feedLive(t, le, ds, stablePrefix+10)

	ctx := context.Background()
	// Appender: seal the rest of the feed and keep dropping late cross-lane
	// contact events beyond the stable prefix, so reader answers over
	// [0, stablePrefix] stay pinned while lanes compact concurrently.
	done := make(chan error, 1)
	go func() {
		positions := make([]streach.Point, ds.NumObjects())
		for tk := le.NumTicks(); tk < 200; tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := le.AddInstant(positions); err != nil {
				done <- err
				return
			}
			late := streach.Tick(stablePrefix + 2 + tk%8)
			if _, err := le.Ingest([]streach.ContactEvent{
				{Tick: late, A: streach.ObjectID(tk % 150), B: streach.ObjectID(150 + tk%42)},
			}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// Single reader stream: every query's IO delta accumulates; with no
	// other pool reader, the sum must equal the pool counter movement.
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: stablePrefix,
		Count: 48, MinLen: stablePrefix / 2, MaxLen: stablePrefix, Seed: 43,
	})
	base := pool.Stats()
	var reads, hits int64
	appending := true
	for i := 0; appending || i < len(work); i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			appending = false
		default:
		}
		q := work[i%len(work)]
		r, err := le.Reachable(ctx, q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if want := fullOracle.Reachable(q); r.Reachable != want {
			t.Fatalf("answer for %v diverged mid-ingest: got %v, want %v", q, r.Reachable, want)
		}
		reads += r.IO.RandomReads + r.IO.SequentialReads
		hits += r.IO.BufferHits
		if i%8 == 0 {
			sr, err := le.ReachableSet(ctx, streach.ObjectID(i%ds.NumObjects()), streach.NewInterval(0, stablePrefix-1))
			if err != nil {
				t.Fatal(err)
			}
			reads += sr.IO.RandomReads + sr.IO.SequentialReads
			hits += sr.IO.BufferHits
		}
	}
	ps := pool.Stats()
	if gotMisses := ps.Misses - base.Misses; gotMisses != reads {
		t.Errorf("query accountants saw %d pool misses, pool counted %d", reads, gotMisses)
	}
	if gotHits := ps.Hits - base.Hits; gotHits != hits {
		t.Errorf("query accountants saw %d pool hits, pool counted %d", hits, gotHits)
	}
	st := le.Stats()
	if st.Compactions == 0 {
		t.Error("no lane compacted during the race window")
	}
	if st.CrossShardFrontier == 0 {
		t.Error("no frontier object ever crossed the shard cut")
	}
}

// TestShardFrozenConcurrentReaders hammers one frozen sharded engine with
// concurrent readers (run under -race in CI): the scatter-gather scratch
// state is per-query, so answers must stay exact and the shared pool's
// counter movement must equal the accumulated query deltas.
func TestShardFrozenConcurrentReaders(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 96, NumTicks: 160, Seed: 55,
	})
	oracle := ds.Contacts().Oracle()
	pool := streach.NewBufferPool(64)
	eng, err := streach.Open("shard:4:spatial:reachgraph", ds, streach.Options{
		Pool: pool, QueryParallelism: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	work := streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
		Count: 32, MinLen: 40, MaxLen: ds.NumTicks(), Seed: 17,
	})
	base := pool.Stats()
	var mu sync.Mutex
	var reads, hits int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var myReads, myHits int64
			for i, q := range work {
				r, err := eng.Reachable(ctx, q)
				if err != nil {
					t.Errorf("%v: %v", q, err)
					return
				}
				if want := oracle.Reachable(q); r.Reachable != want {
					t.Errorf("reader %d: %v got %v, want %v", w, q, r.Reachable, want)
					return
				}
				myReads += r.IO.RandomReads + r.IO.SequentialReads
				myHits += r.IO.BufferHits
				if (i+w)%6 == 0 {
					sr, err := eng.ReachableSet(ctx, q.Src, q.Interval)
					if err != nil {
						t.Error(err)
						return
					}
					want := oracle.ReachableSet(q.Src, q.Interval)
					sortIDs(want)
					if !equalIDs(sr.Objects, want) {
						t.Errorf("reader %d set %d %v diverged", w, q.Src, q.Interval)
						return
					}
					myReads += sr.IO.RandomReads + sr.IO.SequentialReads
					myHits += sr.IO.BufferHits
				}
			}
			mu.Lock()
			reads += myReads
			hits += myHits
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	ps := pool.Stats()
	if gotMisses := ps.Misses - base.Misses; gotMisses != reads {
		t.Errorf("query accountants saw %d pool misses, pool counted %d", reads, gotMisses)
	}
	if gotHits := ps.Hits - base.Hits; gotHits != hits {
		t.Errorf("query accountants saw %d pool hits, pool counted %d", hits, gotHits)
	}
}
