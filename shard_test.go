package streach_test

import (
	"context"
	"errors"
	"testing"

	"streach"
)

// shardSource is the dataset the sharded-backend tests query: large enough
// that multi-round frontier hand-offs between shards actually happen.
func shardSource(t testing.TB) *streach.Dataset {
	t.Helper()
	return streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 72, NumTicks: 200, Seed: 907,
	})
}

// TestShardDynamicNamesMatchOracle opens shard configurations that are NOT
// pre-registered — odd shard counts, segmented and bidir bases, explicit
// "hash:" — and asserts exact oracle agreement on point and set queries.
// (The pre-registered shard:{1,2,4}[:spatial]:reachgraph points are swept by
// TestCrossBackendConformance like every registry backend.)
func TestShardDynamicNamesMatchOracle(t *testing.T) {
	ds := shardSource(t)
	oracle := ds.Contacts().Oracle()
	ctx := context.Background()
	// The explicit "hash:" spelling canonicalizes to the bare form.
	if eng, err := streach.Open("shard:3:hash:reachgraph-mem", ds, streach.Options{}); err != nil {
		t.Fatal(err)
	} else if eng.Name() != "shard:3:reachgraph-mem" {
		t.Errorf("hash spelling canonicalized to %q", eng.Name())
	}
	// GRAIL cores answer by label containment, not frontier expansion, so
	// they cannot serve as shard children.
	if _, err := streach.Open("shard:2:grail-mem", ds, streach.Options{}); err == nil {
		t.Error("Open(shard:2:grail-mem) accepted a base with no scatter-gather entry points")
	}
	for _, name := range []string{
		"shard:3:reachgraph-mem",
		"shard:3:spatial:reachgraph-mem",
		"shard:2:segmented:reachgraph",
		"shard:2:bidir:reachgraph",
		"shard:5:spatial:segmented:reachgraph-mem",
	} {
		eng, err := streach.Open(name, ds, streach.Options{SegmentTicks: 48})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("%s: Name = %q", name, eng.Name())
		}
		work := streach.RandomQueries(streach.WorkloadOptions{
			NumObjects: ds.NumObjects(), NumTicks: ds.NumTicks(),
			Count: 60, MinLen: 5, MaxLen: ds.NumTicks(), Seed: 31,
		})
		for _, q := range work {
			r, err := eng.Reachable(ctx, q)
			if err != nil {
				t.Fatalf("%s %v: %v", name, q, err)
			}
			if want := oracle.Reachable(q); r.Reachable != want {
				t.Fatalf("%s disagrees with oracle on %v: got %v, want %v", name, q, r.Reachable, want)
			}
		}
		for src := streach.ObjectID(0); src < 6; src++ {
			iv := streach.NewInterval(streach.Tick(src*7), streach.Tick(ds.NumTicks()-1))
			sr, err := eng.ReachableSet(ctx, src, iv)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.ReachableSet(src, iv)
			sortIDs(want)
			if !equalIDs(sr.Objects, want) {
				t.Fatalf("%s set %d %v: got %v, want %v", name, src, iv, sr.Objects, want)
			}
		}
	}
}

// TestShardNameErrors exercises the malformed and unsatisfiable shard names.
func TestShardNameErrors(t *testing.T) {
	ds := shardSource(t)
	for _, name := range []string{
		"shard:0:reachgraph",         // shard count < 1
		"shard:x:reachgraph",         // non-numeric count
		"shard:2:",                   // empty base
		"shard:2:shard:2:reachgraph", // nested sharding
		"shard:2:nosuch",             // unknown base
	} {
		if _, err := streach.Open(name, ds, streach.Options{}); !errors.Is(err, streach.ErrUnknownBackend) {
			t.Errorf("Open(%q) = %v, want ErrUnknownBackend", name, err)
		}
	}
	// Trajectory-indexing bases cannot shard: children open from per-shard
	// contact networks.
	if _, err := streach.Open("shard:2:grail", ds, streach.Options{}); err == nil {
		t.Error("Open(shard:2:grail) accepted a trajectory-indexing base")
	}
	// The spatial partitioner snaps trajectories, so a bare contact network
	// cannot feed it.
	if _, err := streach.Open("shard:2:spatial:reachgraph", ds.Contacts(), streach.Options{}); !errors.Is(err, streach.ErrNeedsTrajectories) {
		t.Errorf("spatial cut from contact network = %v, want ErrNeedsTrajectories", err)
	}
	if _, err := streach.Open("shard:2:reachgraph", ds.Contacts(), streach.Options{}); err != nil {
		t.Errorf("hash cut from contact network: %v", err)
	}
}

// TestShardStatsSurface checks the sharding observability: Stats shard
// fields, the Sharded interface, per-shard accounting and the cross-shard
// frontier counter.
func TestShardStatsSurface(t *testing.T) {
	ds := shardSource(t)
	ctx := context.Background()
	eng, err := streach.Open("shard:4:spatial:reachgraph", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Shards != 4 || st.Partitioner != "spatial" {
		t.Fatalf("Stats shards = %d/%q, want 4/spatial", st.Shards, st.Partitioner)
	}
	if st.CrossShardRatio < 0 || st.CrossShardRatio > 1 {
		t.Fatalf("CrossShardRatio = %v", st.CrossShardRatio)
	}
	if !st.HasPool {
		t.Error("disk-resident shards report no buffer pool")
	}
	sh, ok := eng.(streach.Sharded)
	if !ok {
		t.Fatal("shard backend does not implement Sharded")
	}
	details := sh.ShardStats()
	if len(details) != 4 {
		t.Fatalf("ShardStats len = %d", len(details))
	}
	objects := 0
	for s, d := range details {
		if d.Shard != s {
			t.Errorf("ShardStats[%d].Shard = %d", s, d.Shard)
		}
		if d.Objects <= 0 {
			t.Errorf("shard %d owns %d objects; spatial cut should balance", s, d.Objects)
		}
		objects += d.Objects
	}
	if objects != ds.NumObjects() {
		t.Errorf("shards own %d objects, dataset has %d", objects, ds.NumObjects())
	}
	if _, err := eng.ReachableSet(ctx, 0, streach.NewInterval(0, streach.Tick(ds.NumTicks()-1))); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.IO.RandomReads+st.IO.SequentialReads+st.IO.BufferHits == 0 {
		t.Error("sharded set query charged no I/O on a disk backend")
	}
}

// TestLiveShardMatchesOracle replays a feed into a hash-sharded LiveEngine
// — per-shard ingest lanes, sealing and compaction — and asserts exact
// oracle agreement at checkpoints, through late events and retractions.
func TestLiveShardMatchesOracle(t *testing.T) {
	ds := replaySource(t, 40, 240)
	ctx := context.Background()
	le, err := streach.NewLiveEngine("shard:3:reachgraph", ds.NumObjects(), ds.Env(), ds.ContactDist(),
		streach.Options{SegmentTicks: 32, CompactEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if le.Name() != "live:shard:3:reachgraph" {
		t.Errorf("Name = %q", le.Name())
	}
	for _, checkpoint := range []int{60, 140, 240} {
		feedLive(t, le, ds, checkpoint)
		if got := le.NumTicks(); got != checkpoint {
			t.Fatalf("NumTicks = %d, want %d", got, checkpoint)
		}
		// Drop a late add and retract an instant behind the frontier; the
		// routed delta logs must keep answers exact immediately.
		late := streach.Tick(checkpoint - 20)
		rep, err := le.Ingest([]streach.ContactEvent{
			{Tick: late, A: 1, B: 39},
			{Tick: late, A: 1, B: 39, Retract: true},
			{Tick: late, A: 2, B: 38},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Late+rep.Applied != 2 || rep.Retracted != 1 {
			t.Fatalf("ingest report %+v, want 2 applies and 1 retraction", rep)
		}
		if !le.ContactActiveAt(2, 38, late) {
			t.Error("late add invisible to ContactActiveAt")
		}
		if le.ContactActiveAt(1, 39, late) {
			t.Error("retracted contact still active")
		}
		oracle := le.Snapshot().Oracle()
		ref, err := streach.Open("oracle", le.Snapshot(), streach.Options{})
		if err != nil {
			t.Fatal(err)
		}
		work := streach.RandomQueries(streach.WorkloadOptions{
			NumObjects: ds.NumObjects(), NumTicks: checkpoint,
			Count: 40, MinLen: 8, MaxLen: checkpoint, Seed: int64(checkpoint),
		})
		for _, q := range work {
			r, err := le.Reachable(ctx, q)
			if err != nil {
				t.Fatalf("%v: %v", q, err)
			}
			if want := oracle.Reachable(q); r.Reachable != want {
				t.Fatalf("disagrees with oracle on %v at tick %d: got %v, want %v", q, checkpoint, r.Reachable, want)
			}
			ar, err := le.EarliestArrival(ctx, q.Src, q.Dst, q.Interval)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.EarliestArrival(ctx, q.Src, q.Dst, q.Interval)
			if err != nil {
				t.Fatal(err)
			}
			if ar.Reachable != want.Reachable || ar.Arrival != want.Arrival {
				t.Fatalf("arrival for %v: got (%v,%v), want (%v,%v)", q, ar.Arrival, ar.Reachable, want.Arrival, want.Reachable)
			}
			if !ar.Native {
				t.Fatalf("sharded live arrival for %v fell back to the oracle", q)
			}
		}
		for src := streach.ObjectID(0); src < 4; src++ {
			iv := streach.NewInterval(streach.Tick(5*src), streach.Tick(checkpoint-1))
			sr, err := le.ReachableSet(ctx, src, iv)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.ReachableSet(src, iv)
			sortIDs(want)
			if !equalIDs(sr.Objects, want) {
				t.Fatalf("set %d %v at tick %d: got %v, want %v", src, iv, checkpoint, sr.Objects, want)
			}
		}
	}
	if _, err := le.Compact(); err != nil {
		t.Fatal(err)
	}
	st := le.Stats()
	if st.Shards != 3 || st.Partitioner != "hash" {
		t.Errorf("live Stats shards = %d/%q, want 3/hash", st.Shards, st.Partitioner)
	}
	if st.Compactions == 0 {
		t.Error("no lane ever compacted")
	}
	if st.CrossShardRatio <= 0 || st.CrossShardRatio > 1 {
		t.Errorf("live CrossShardRatio = %v, want (0, 1] under hash partitioning", st.CrossShardRatio)
	}
	if st.CrossShardFrontier == 0 {
		t.Error("no frontier object ever crossed the shard cut")
	}
	details := le.ShardStats()
	if len(details) != 3 {
		t.Fatalf("live ShardStats len = %d", len(details))
	}
	objects := 0
	for _, d := range details {
		objects += d.Objects
		if d.Contacts == 0 {
			t.Errorf("shard %d routed no contacts", d.Shard)
		}
	}
	if objects != ds.NumObjects() {
		t.Errorf("lanes own %d objects, feed has %d", objects, ds.NumObjects())
	}
	if seg := le.SegmentStats(); len(seg) == 0 {
		t.Error("empty SegmentStats")
	}
}

// TestLiveShardRejectsSpatial: the live feed carries no trajectories to
// snap, so only hash partitioning is live-capable.
func TestLiveShardRejectsSpatial(t *testing.T) {
	ds := replaySource(t, 10, 10)
	_, err := streach.NewLiveEngine("shard:2:spatial:reachgraph", ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{})
	if !errors.Is(err, streach.ErrNotLiveCapable) {
		t.Fatalf("spatial live shards = %v, want ErrNotLiveCapable", err)
	}
	// shard:1 keeps the single log but preserves the requested name.
	le, err := streach.NewLiveEngine("shard:1:reachgraph-mem", ds.NumObjects(), ds.Env(), ds.ContactDist(), streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if le.Name() != "live:shard:1:reachgraph-mem" {
		t.Errorf("Name = %q", le.Name())
	}
	if st := le.Stats(); st.Shards != 1 {
		t.Errorf("Stats.Shards = %d, want 1", st.Shards)
	}
}
