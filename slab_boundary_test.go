package streach_test

import (
	"context"
	"testing"

	"streach"
	"streach/internal/contact"
	"streach/internal/geo"
	"streach/internal/trajectory"
)

// slab_boundary_test.go pins the off-by-one behavior of contact splitting
// at time-slab edges: a contact active only at the LAST tick of slab k, or
// only at the FIRST tick of slab k+1, or spanning the edge, must propagate
// identically through every segmented backend and the unsegmented oracle.

// slabEdgeTicks is the slab width of these tests; contacts below are
// placed exactly on multiples and last ticks of it.
const slabEdgeTicks = 8

// slabEdgeContacts is a transfer chain whose every link sits on a slab
// edge: 0→1 at tick 7 (last tick of slab 0), 1→2 at tick 8 (first tick of
// slab 1), 2→3 over [15, 16] (spans the slab 1/2 edge), 3→4 at tick 23
// (last tick of the domain).
var slabEdgeContacts = []contact.Contact{
	{A: 0, B: 1, Validity: contact.Interval{Lo: 7, Hi: 7}},
	{A: 1, B: 2, Validity: contact.Interval{Lo: 8, Hi: 8}},
	{A: 2, B: 3, Validity: contact.Interval{Lo: 15, Hi: 16}},
	{A: 3, B: 4, Validity: contact.Interval{Lo: 23, Hi: 23}},
}

const slabEdgeObjects, slabEdgeNumTicks = 6, 24

// slabEdgeIntervals enumerates query intervals whose endpoints hit every
// slab edge and its neighbours.
func slabEdgeIntervals() []streach.Interval {
	marks := []streach.Tick{0, 6, 7, 8, 9, 14, 15, 16, 17, 22, 23}
	var out []streach.Interval
	for _, lo := range marks {
		for _, hi := range marks {
			if lo <= hi {
				out = append(out, streach.NewInterval(lo, hi))
			}
		}
	}
	return out
}

// TestSlabBoundaryContactSplitting compares every contact-sourced
// segmented backend against the unsegmented oracle on the edge chain, for
// all (src, dst) pairs and all edge-aligned intervals.
func TestSlabBoundaryContactSplitting(t *testing.T) {
	net := contact.FromContacts(slabEdgeObjects, slabEdgeNumTicks, slabEdgeContacts)
	src := streach.WrapContactNetwork(net)
	oracle, err := streach.Open("oracle", src, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range []string{"segmented:oracle", "segmented:reachgraph", "segmented:reachgraph-mem"} {
		e, err := streach.Open(name, src, streach.Options{SegmentTicks: slabEdgeTicks})
		if err != nil {
			t.Fatalf("open %q: %v", name, err)
		}
		assertSlabEdgeConformance(t, ctx, e, oracle, name)
	}
}

// TestSlabBoundaryTrajectorySplitting is the trajectory-side twin: a
// hand-built dataset realizes the same contact chain through co-location
// (object b teleports next to object a for exactly the contact's validity
// ticks), exercising segmented:reachgrid's windowed trajectory extraction.
func TestSlabBoundaryTrajectorySplitting(t *testing.T) {
	d := &trajectory.Dataset{
		Name:        "slabedge",
		Env:         geo.NewRect(geo.Point{}, geo.Point{X: 100, Y: 100}),
		TickSeconds: 1,
		ContactDist: 1.0,
		Trajs:       make([]trajectory.Trajectory, slabEdgeObjects),
	}
	home := func(o int) geo.Point { return geo.Point{X: float64(10 + 15*o), Y: 50} }
	for o := range d.Trajs {
		pos := make([]geo.Point, slabEdgeNumTicks)
		for tk := range pos {
			pos[tk] = home(o)
		}
		d.Trajs[o] = trajectory.Trajectory{Object: trajectory.ObjectID(o), Pos: pos}
	}
	// Realize each contact by moving B beside A for the validity window.
	for _, c := range slabEdgeContacts {
		for tk := c.Validity.Lo; tk <= c.Validity.Hi; tk++ {
			d.Trajs[c.B].Pos[tk] = home(int(c.A)).Add(geo.Point{X: 0.5})
		}
	}
	src := streach.WrapDataset(d)
	// The realized contact network must be exactly the synthetic chain.
	if got, want := src.Contacts().NumContacts(), len(slabEdgeContacts); got != want {
		t.Fatalf("dataset realizes %d contacts, want %d", got, want)
	}
	oracle, err := streach.Open("oracle", src, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range []string{"reachgrid", "segmented:reachgrid"} {
		e, err := streach.Open(name, src, streach.Options{SegmentTicks: slabEdgeTicks})
		if err != nil {
			t.Fatalf("open %q: %v", name, err)
		}
		assertSlabEdgeConformance(t, ctx, e, oracle, name)
	}
}

func assertSlabEdgeConformance(t *testing.T, ctx context.Context, e, oracle streach.Engine, name string) {
	t.Helper()
	for src := streach.ObjectID(0); src < slabEdgeObjects; src++ {
		for dst := streach.ObjectID(0); dst < slabEdgeObjects; dst++ {
			for _, iv := range slabEdgeIntervals() {
				q := streach.Query{Src: src, Dst: dst, Interval: iv}
				want, err := oracle.Reachable(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Reachable(ctx, q)
				if err != nil {
					t.Fatalf("%s %v: %v", name, q, err)
				}
				if got.Reachable != want.Reachable {
					t.Fatalf("%s %v: got %v, oracle %v", name, q, got.Reachable, want.Reachable)
				}
				// Earliest arrival must also survive the slab split: the
				// planner re-bases slab-local ticks to global ones.
				wantA, err := oracle.EarliestArrival(ctx, src, dst, iv)
				if err != nil {
					t.Fatal(err)
				}
				gotA, err := e.EarliestArrival(ctx, src, dst, iv)
				if err != nil {
					t.Fatalf("%s EarliestArrival %v: %v", name, q, err)
				}
				if gotA.Reachable != wantA.Reachable || gotA.Arrival != wantA.Arrival {
					t.Fatalf("%s %v: arrival (%v, %d), oracle (%v, %d)",
						name, q, gotA.Reachable, gotA.Arrival, wantA.Reachable, wantA.Arrival)
				}
			}
		}
	}
	// Reachable sets across the boundary chain over the full domain.
	full := streach.NewInterval(0, slabEdgeNumTicks-1)
	for src := streach.ObjectID(0); src < slabEdgeObjects; src++ {
		want, err := oracle.ReachableSet(ctx, src, full)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.ReachableSet(ctx, src, full)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Objects) != len(want.Objects) {
			t.Fatalf("%s set(%d): %v, oracle %v", name, src, got.Objects, want.Objects)
		}
		for i := range want.Objects {
			if got.Objects[i] != want.Objects[i] {
				t.Fatalf("%s set(%d): %v, oracle %v", name, src, got.Objects, want.Objects)
			}
		}
	}
}
