// Engine statistics snapshots. A serving layer (metrics endpoints, load
// shedders, dashboards) needs one consistent view of an engine's counters
// instead of poking IOTotals, IndexBytes and the buffer pool separately;
// EngineStats is that view, and every Engine — registry backends,
// segmented engines and LiveEngine — produces it with Stats(). Snapshots
// are safe to take while queries run and while a LiveEngine ingests: every
// consolidated counter is atomic or taken under the owning lock.

package streach

// EngineStats is a point-in-time snapshot of an engine's observable state.
type EngineStats struct {
	// Backend is the engine's registry name (Engine.Name).
	Backend string
	// NumObjects and NumTicks are the time-domain dimensions. For a
	// LiveEngine NumTicks grows with the feed: it counts the instants
	// ingested before the snapshot.
	NumObjects int
	NumTicks   int
	// IndexBytes is the simulated on-disk index size (summed across
	// segments for segmented and live engines); zero for memory-resident
	// backends.
	IndexBytes int64
	// IO is the engine's cumulative simulated disk traffic (IOTotals).
	IO IOStats
	// HasPool reports whether the engine draws on a buffer pool it can
	// observe; Pool is that pool's global counters. Engines opened with a
	// shared Options.Pool report the pool-wide counters (the pool may be
	// serving other engines too).
	HasPool bool
	Pool    PoolStats
	// Segments is the number of time slabs a segmented engine plans over
	// (for a LiveEngine: sealed segments plus the mutable tail when it
	// holds instants); zero for unsegmented engines.
	Segments int
	// SealedSegments is the number of immutable sealed segments of a
	// LiveEngine; zero elsewhere.
	SealedSegments int
	// DeltaEvents is the live delta-log depth: effective late/retraction
	// events pending against sealed segments, awaiting compaction.
	// DirtySegments is the number of sealed segments carrying such deltas.
	// Zero for frozen engines.
	DeltaEvents   int
	DirtySegments int
	// LateEvents, Retractions and Compactions are a LiveEngine's
	// cumulative out-of-order ingest counters: contact adds accepted
	// behind the frontier, contact instants retracted, and dirty segments
	// re-sealed. Zero for frozen engines.
	LateEvents  int64
	Retractions int64
	Compactions int64
	// Shards is the shard count of a sharded engine ("shard:*" backends
	// and sharded LiveEngines); zero for unsharded engines. Partitioner
	// names the scheme that produced the object assignment ("hash" or
	// "spatial").
	Shards      int
	Partitioner string
	// CrossShardRatio is the fraction of contacts crossing the shard cut
	// (each such contact is duplicated into both endpoint shards) — the
	// static partition-quality metric: ~1-1/K for a uniform random cut,
	// near zero for a spatial cut of clustered mobility.
	CrossShardRatio float64
	// CrossShardFrontier counts the boundary objects queries handed across
	// the shard cut so far — the cumulative scatter-gather traffic.
	CrossShardFrontier int64
	// ShardDetails holds one entry per shard in shard order; nil for
	// unsharded engines.
	ShardDetails []ShardStats
}

// ShardStats describes one shard of a sharded engine: its owned object
// count, the contacts of its sub-network (cross-shard contacts counted on
// both sides), its index footprint and its cumulative simulated I/O.
type ShardStats struct {
	Shard      int
	Objects    int
	Contacts   int
	IndexBytes int64
	IO         IOStats
}

// Sharded is implemented by engines built from object shards (the
// "shard:*" backends and sharded LiveEngines). Callers obtain it by type
// assertion from an Engine.
type Sharded interface {
	// ShardStats returns one entry per shard in shard order.
	ShardStats() []ShardStats
}

func (e *engine) Stats() EngineStats {
	st := EngineStats{
		Backend:    e.name,
		NumObjects: e.numObjects,
		NumTicks:   e.numTicks,
		IndexBytes: e.core.indexBytes(),
		IO:         statsOf(e.core.ioTotals()),
	}
	if e.pool != nil {
		st.HasPool = true
		st.Pool = e.pool.Stats()
	}
	return st
}

func (e *segmentedEngine) Stats() EngineStats {
	st := e.engine.Stats()
	st.Segments = len(e.seg.slabs)
	return st
}
