package streach_test

import (
	"context"
	"sync"
	"testing"

	"streach"
)

// TestEngineStatsSnapshot pins the Stats() surface: one consistent struct
// per engine kind, with the pool counters visible for disk-resident
// backends and segment counts for segmented ones.
func TestEngineStatsSnapshot(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{NumObjects: 40, NumTicks: 300, Seed: 7})
	ctx := context.Background()

	for _, name := range []string{"reachgraph", "reachgraph-mem", "segmented:reachgraph", "oracle"} {
		e, err := streach.Open(name, ds, streach.Options{SegmentTicks: 100})
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		if _, err := e.Reachable(ctx, streach.Query{Src: 1, Dst: 2, Interval: streach.NewInterval(0, 250)}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := e.Stats()
		if st.Backend != name {
			t.Errorf("%s: Stats().Backend = %q", name, st.Backend)
		}
		if st.NumObjects != ds.NumObjects() || st.NumTicks != ds.NumTicks() {
			t.Errorf("%s: dims %d×%d, want %d×%d", name, st.NumObjects, st.NumTicks, ds.NumObjects(), ds.NumTicks())
		}
		if got, want := st.IO, e.IOTotals(); got != want {
			t.Errorf("%s: Stats().IO %+v != IOTotals %+v", name, got, want)
		}
		if got, want := st.IndexBytes, e.IndexBytes(); got != want {
			t.Errorf("%s: Stats().IndexBytes %d != IndexBytes %d", name, got, want)
		}
		info, _ := streach.LookupBackend(name)
		if info.DiskResident {
			if !st.HasPool {
				t.Errorf("%s: disk-resident engine reports no pool", name)
			}
			if st.Pool.Hits+st.Pool.Misses == 0 {
				t.Errorf("%s: pool counters untouched after a query", name)
			}
		} else if st.HasPool {
			t.Errorf("%s: memory engine reports a pool", name)
		}
		wantSegs := 0
		if name == "segmented:reachgraph" {
			wantSegs = 3 // 300 ticks / 100-tick slabs
		}
		if st.Segments != wantSegs {
			t.Errorf("%s: Segments = %d, want %d", name, st.Segments, wantSegs)
		}
	}
}

// TestEngineStatsRaceClean takes snapshots concurrently with a query storm
// (and, for the live engine, with ingestion) — the satellite guarantee
// that /metrics scrapes never race the serving path. Run under -race.
func TestEngineStatsRaceClean(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{NumObjects: 32, NumTicks: 200, Seed: 11})
	e, err := streach.Open("reachgraph", ds, streach.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := streach.Query{
					Src:      streach.ObjectID((w*7 + i) % ds.NumObjects()),
					Dst:      streach.ObjectID((w*13 + i*3) % ds.NumObjects()),
					Interval: streach.NewInterval(0, 150),
				}
				if _, err := e.Reachable(ctx, q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st := e.Stats()
				if st.IO.RandomReads < 0 {
					t.Error("negative counter")
					return
				}
			}
		}()
	}
	wg.Wait()

	// Live engine: snapshots concurrent with appends and queries.
	live, err := streach.NewLiveEngine("reachgraph-mem", ds.NumObjects(), ds.Env(), ds.ContactDist(),
		streach.Options{SegmentTicks: 50})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var lwg sync.WaitGroup
	lwg.Add(1)
	go func() {
		defer lwg.Done()
		positions := make([]streach.Point, ds.NumObjects())
		for tk := 0; tk < ds.NumTicks(); tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := live.AddInstant(positions); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		lwg.Add(1)
		go func() {
			defer lwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := live.Stats()
				if st.SealedSegments > st.Segments {
					t.Errorf("sealed %d > segments %d", st.SealedSegments, st.Segments)
					return
				}
				if _, err := live.Reachable(context.Background(), streach.Query{
					Src: 0, Dst: 1, Interval: streach.NewInterval(0, streach.Tick(ds.NumTicks())),
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Let readers overlap the whole ingest, then stop them.
	lwg.Add(1)
	go func() { defer lwg.Done(); defer close(done) }()
	lwg.Wait()

	st := live.Stats()
	if st.NumTicks != ds.NumTicks() {
		t.Fatalf("live Stats().NumTicks = %d, want %d", st.NumTicks, ds.NumTicks())
	}
	if want := ds.NumTicks() / 50; st.SealedSegments != want {
		t.Fatalf("live Stats().SealedSegments = %d, want %d", st.SealedSegments, want)
	}
}

// TestLiveEngineHooks pins the seal/ingest notification contract: OnIngest
// fires once per appended instant with that instant's [t, t] interval,
// OnSegmentSeal fires exactly at slab boundaries with the sealed span, and
// a query issued from inside the seal hook already sees the sealed
// segment.
func TestLiveEngineHooks(t *testing.T) {
	const numObjects, numTicks, slab = 24, 130, 40
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{NumObjects: numObjects, NumTicks: numTicks, Seed: 3})
	live, err := streach.NewLiveEngine("oracle", numObjects, ds.Env(), ds.ContactDist(),
		streach.Options{SegmentTicks: slab})
	if err != nil {
		t.Fatal(err)
	}
	var ingested []streach.Interval
	var seals []streach.Interval
	live.OnIngest(func(iv streach.Interval) { ingested = append(ingested, iv) })
	live.OnSegmentSeal(func(span streach.Interval) {
		seals = append(seals, span)
		if got := live.NumSealedSegments(); got != len(seals) {
			t.Errorf("inside seal hook: %d sealed segments visible, want %d", got, len(seals))
		}
	})

	positions := make([]streach.Point, numObjects)
	for tk := 0; tk < numTicks; tk++ {
		for o := range positions {
			positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
		}
		if err := live.AddInstant(positions); err != nil {
			t.Fatal(err)
		}
	}

	if len(ingested) != numTicks {
		t.Fatalf("ingest hook fired %d times, want %d", len(ingested), numTicks)
	}
	for i, iv := range ingested {
		if want := streach.NewInterval(streach.Tick(i), streach.Tick(i)); iv != want {
			t.Fatalf("ingest hook %d reported %v, want %v", i, iv, want)
		}
	}
	want := []streach.Interval{
		streach.NewInterval(0, slab-1),
		streach.NewInterval(slab, 2*slab-1),
		streach.NewInterval(2*slab, 3*slab-1),
	}
	if len(seals) != len(want) {
		t.Fatalf("seal hook fired %d times, want %d (%v)", len(seals), len(want), seals)
	}
	for i := range want {
		if seals[i] != want[i] {
			t.Fatalf("seal %d span %v, want %v", i, seals[i], want[i])
		}
	}
}
