// Package streach answers reachability queries over large spatiotemporal
// contact datasets, reproducing Shirani-Mehr, Banaei-Kashani & Shahabi,
// "Efficient Reachability Query Evaluation in Large Spatiotemporal Contact
// Datasets", PVLDB 5(9), 2012.
//
// A contact dataset records the trajectories of a set of moving objects. Two
// objects are in contact at an instant when their distance is below the
// dataset's contact threshold dT; an item (virus, message, malware) hops
// between objects through the evolving network of contacts. The reachability
// query Src ⤳ Dst over a time interval asks whether an item initiated by
// Src at the interval start can reach Dst through a time-respecting chain of
// contacts within the interval.
//
// The package offers two disk-resident indexes from the paper plus
// baselines and extensions:
//
//   - ReachGrid (§4): a spatiotemporal grid over trajectory segments;
//     queries expand the contact network on the fly, guided through the
//     spatial and temporal localities that can contain newly reachable
//     objects, with early termination.
//   - ReachGraph (§5): the contact network is reduced to a DAG of connected
//     component runs, augmented with multi-resolution reachability "long
//     edges", partitioned in topological order on disk, and traversed with
//     a bidirectional multi-resolution BFS (BM-BFS).
//   - Baselines: the naïve spatiotemporal-join pipeline (SPJ), external
//     DFS/BFS graph traversals, and GRAIL interval labelling (§6).
//   - Extensions (§7): uncertain contact networks (transmission
//     probabilities with threshold queries) and non-immediate contacts
//     (items with a lifetime deposited in the environment).
//
// Disk residency is simulated: indexes are laid out on a paged store that
// counts random and sequential page accesses, reproducing the paper's
// evaluation metric (one random access costs as much as 20 sequential
// accesses) without physical disks.
//
// # Quick start
//
// Every evaluator is registered in a backend registry under a stable name
// (Backends lists them) and satisfies the Engine interface; queries return
// typed Results carrying the answer, the per-query I/O delta, wall latency
// and an expansion counter:
//
//	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
//		NumObjects: 500, NumTicks: 2000, Seed: 1,
//	})
//	eng, err := streach.Open("reachgraph", ds, streach.Options{})
//	if err != nil { ... }
//	res, err := eng.Reachable(ctx, streach.Query{
//		Src: 3, Dst: 11, Interval: streach.NewInterval(100, 400),
//	})
//	// res.Reachable, res.IO.Normalized, res.Latency, res.Expanded
//
// EvaluateBatch drives a query batch through an engine with a bounded
// worker pool and context cancellation. The concrete index types
// (BuildReachGrid, BuildReachGraph, BuildGrail, …) remain available for
// code that manages index lifecycles directly.
package streach

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"streach/internal/contact"
	"streach/internal/dn"
	"streach/internal/geo"
	"streach/internal/mobility"
	"streach/internal/nonimmediate"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/reachgraph"
	"streach/internal/reachgrid"
	"streach/internal/stjoin"
	"streach/internal/trajectory"
	"streach/internal/uncertain"
)

// ObjectID identifies a moving object; IDs are dense and start at 0.
type ObjectID = trajectory.ObjectID

// Tick is a discrete time instant of a dataset's time domain.
type Tick = trajectory.Tick

// Point is a position in the plane (metres).
type Point = geo.Point

// Rect is an axis-aligned rectangle, used for spatial environments.
type Rect = geo.Rect

// NewEnv returns a width×height environment anchored at the origin.
func NewEnv(width, height float64) Rect {
	return geo.NewRect(Point{}, Point{X: width, Y: height})
}

// Interval is a closed interval of ticks.
type Interval = contact.Interval

// NewInterval returns the closed interval [lo, hi].
func NewInterval(lo, hi Tick) Interval { return Interval{Lo: lo, Hi: hi} }

// Query is a reachability query Src ⤳ Dst over Interval.
type Query = queries.Query

// Contact is one contact between two objects with its validity interval.
type Contact = contact.Contact

// WorkloadOptions configures RandomQueries; the zero value reproduces the
// paper's workload (random endpoints, interval length uniform in
// [150, 350]).
type WorkloadOptions = queries.WorkloadConfig

// RandomQueries generates a random query workload.
func RandomQueries(opts WorkloadOptions) []Query { return queries.RandomWorkload(opts) }

// RWPOptions configures the random-waypoint generator (individuals with
// Bluetooth-range contacts; the RWP datasets of §6).
type RWPOptions = mobility.RWPConfig

// VNOptions configures the road-network vehicle generator (vehicles with
// DSRC-range contacts; the VN datasets of §6).
type VNOptions = mobility.VNConfig

// TaxiOptions configures the taxi-day generator (the stand-in for the
// paper's Beijing GPS dataset, VNR).
type TaxiOptions = mobility.TaxiConfig

// ClusteredOptions configures the clustered-mobility generator (objects
// orbiting home regions with rare cross-region roaming — the workload a
// spatial partitioner keeps shard-local).
type ClusteredOptions = mobility.ClusteredConfig

// Dataset is a contact dataset: trajectories of all objects over a common
// discrete time domain plus the contact threshold metadata.
type Dataset struct {
	d *trajectory.Dataset

	cnOnce sync.Once
	cn     *ContactNetwork
}

// GenerateRandomWaypoint synthesizes an RWP dataset.
func GenerateRandomWaypoint(opts RWPOptions) *Dataset {
	return &Dataset{d: mobility.RandomWaypoint(opts)}
}

// GenerateVehicles synthesizes a road-network vehicle dataset.
func GenerateVehicles(opts VNOptions) *Dataset {
	return &Dataset{d: mobility.NetworkVehicles(opts)}
}

// GenerateTaxiDay synthesizes a day of hotspot-biased taxi trips.
func GenerateTaxiDay(opts TaxiOptions) *Dataset {
	return &Dataset{d: mobility.TaxiDay(opts)}
}

// GenerateClustered synthesizes a clustered-mobility dataset.
func GenerateClustered(opts ClusteredOptions) *Dataset {
	return &Dataset{d: mobility.Clustered(opts)}
}

// Name returns the dataset's display name (e.g. "RWP500").
func (ds *Dataset) Name() string { return ds.d.Name }

// NumObjects returns |O|.
func (ds *Dataset) NumObjects() int { return ds.d.NumObjects() }

// NumTicks returns |T|.
func (ds *Dataset) NumTicks() int { return ds.d.NumTicks() }

// Env returns the spatial environment.
func (ds *Dataset) Env() Rect { return ds.d.Env }

// ContactDist returns the contact threshold dT in metres.
func (ds *Dataset) ContactDist() float64 { return ds.d.ContactDist }

// SizeBytes returns the raw trajectory data volume (the Table 2 metric).
func (ds *Dataset) SizeBytes() int64 { return ds.d.SizeBytes() }

// Position returns object o's position at tick t (clamped to its samples).
func (ds *Dataset) Position(o ObjectID, t Tick) Point { return ds.d.Traj(o).AtClamped(t) }

// Contacts extracts the dataset's contact network by a window trajectory
// self-join over the full time domain. The extraction runs once; subsequent
// calls (including the ones Open performs for graph-based backends) return
// the same network.
func (ds *Dataset) Contacts() *ContactNetwork {
	ds.cnOnce.Do(func() {
		ds.cn = &ContactNetwork{net: contact.Extract(ds.d)}
	})
	return ds.cn
}

// ContactNetwork is the materialized contact network C of a dataset.
type ContactNetwork struct {
	net *contact.Network
}

// NumContacts returns |C|, the number of distinct contacts (a pair meeting,
// parting and re-meeting counts twice).
func (cn *ContactNetwork) NumContacts() int { return cn.net.NumContacts() }

// NumObjects returns |O|.
func (cn *ContactNetwork) NumObjects() int { return cn.net.NumObjects }

// NumTicks returns |T|.
func (cn *ContactNetwork) NumTicks() int { return cn.net.NumTicks }

// All returns a copy of the contact records.
func (cn *ContactNetwork) All() []Contact {
	return append([]Contact(nil), cn.net.Contacts...)
}

// Oracle returns a brute-force reference evaluator over the network. It is
// exact but unindexed — O(|O|·|Tp|) per query — and serves as ground truth
// for validating the indexes.
func (cn *ContactNetwork) Oracle() *Oracle {
	return &Oracle{o: queries.NewOracle(cn.net)}
}

// Oracle evaluates queries by direct propagation simulation.
type Oracle struct {
	o *queries.Oracle
}

// Reachable answers q against ground truth.
func (o *Oracle) Reachable(q Query) bool { return o.o.Reachable(q) }

// ReachableSet returns all objects reachable from src during iv.
func (o *Oracle) ReachableSet(src ObjectID, iv Interval) []ObjectID {
	return o.o.ReachableSet(src, iv)
}

// IOStats reports the simulated disk traffic of an index.
type IOStats struct {
	// RandomReads and SequentialReads count page fetches that missed the
	// buffer pool; a read is sequential when it targets the physical
	// successor of the previously read page.
	RandomReads     int64
	SequentialReads int64
	// BufferHits counts pool hits (free).
	BufferHits int64
	// Normalized is the paper's metric: random + sequential/20.
	Normalized float64
}

func statsOf(s pagefile.Stats) IOStats {
	return IOStats{
		RandomReads:     s.RandomReads,
		SequentialReads: s.SequentialReads,
		BufferHits:      s.BufferHits,
		Normalized:      s.Normalized(),
	}
}

// ReachGridOptions configures BuildReachGrid. Zero values select the
// paper's empirical optima (temporal buckets of 20 instants) and a spatial
// cell of 1/8 of the environment width.
type ReachGridOptions struct {
	// CellSize is the spatial grid resolution RS in metres.
	CellSize float64
	// BucketTicks is the temporal grid resolution RT in instants.
	BucketTicks int
	// PoolPages sizes the buffer pool of the simulated disk.
	PoolPages int
	// PageFormat selects the on-page record layout (zero: varint-delta).
	PageFormat PageFormat
}

// ReachGrid is a disk-resident ReachGrid index over one dataset.
type ReachGrid struct {
	ix *reachgrid.Index
}

// BuildReachGrid constructs the ReachGrid of ds.
func BuildReachGrid(ds *Dataset, opts ReachGridOptions) (*ReachGrid, error) {
	ix, err := reachgrid.Build(ds.d, reachgrid.Params{
		CellSize:    opts.CellSize,
		BucketTicks: opts.BucketTicks,
		PoolPages:   opts.PoolPages,
		Format:      opts.PageFormat,
	})
	if err != nil {
		return nil, err
	}
	return &ReachGrid{ix: ix}, nil
}

// Reachable answers q by guided on-the-fly expansion (Algorithm 1).
func (g *ReachGrid) Reachable(q Query) (bool, error) { return g.ix.Reach(q) }

// ReachableNaive answers q with the SPJ baseline: materialize every
// trajectory segment overlapping the interval, then propagate.
func (g *ReachGrid) ReachableNaive(q Query) (bool, error) { return g.ix.SPJReach(q) }

// ReachableSet returns every object reachable from src during iv, sorted
// ascending.
func (g *ReachGrid) ReachableSet(src ObjectID, iv Interval) ([]ObjectID, error) {
	var acct pagefile.Stats
	return g.ix.ReachableSet(context.Background(), src, iv, &acct)
}

// IOStats returns the accumulated disk traffic.
func (g *ReachGrid) IOStats() IOStats { return statsOf(g.ix.Counters()) }

// ResetStats zeroes the I/O counters and drops the buffer pool, starting a
// fresh measurement window.
func (g *ReachGrid) ResetStats() {
	g.ix.ResetCounters()
	g.ix.Store().DropCache()
}

// IndexBytes returns the on-disk size of the index.
func (g *ReachGrid) IndexBytes() int64 { return g.ix.Store().SizeBytes() }

// Strategy selects a ReachGraph traversal algorithm.
type Strategy = reachgraph.Strategy

// Traversal strategies of §5.2 and §6.2.2.
const (
	// BMBFS is bidirectional multi-resolution BFS, the paper's algorithm.
	BMBFS = reachgraph.BMBFS
	// BBFS is bidirectional BFS at the base resolution only.
	BBFS = reachgraph.BBFS
	// EBFS is unidirectional external BFS.
	EBFS = reachgraph.EBFS
	// EDFS is unidirectional external DFS, the naïve baseline.
	EDFS = reachgraph.EDFS
)

// ReachGraphOptions configures BuildReachGraph. Zero values select the
// paper's empirical optima: partition depth 32 and long-edge resolutions
// {2, 4, 8, 16, 32}.
type ReachGraphOptions struct {
	// PartitionDepth is dp, the BFS depth of each disk partition.
	PartitionDepth int
	// Resolutions lists the long-edge levels (ascending powers of two).
	Resolutions []int
	// PoolPages sizes the buffer pool of the simulated disk.
	PoolPages int
	// PageFormat selects the on-page record layout (zero: varint-delta).
	PageFormat PageFormat
}

// ReachGraph is a disk-resident ReachGraph index.
type ReachGraph struct {
	ix *reachgraph.Index
}

// BuildReachGraph reduces ds's contact network to the run-merged component
// DAG, augments it with multi-resolution long edges and places it on the
// simulated disk.
func BuildReachGraph(ds *Dataset, opts ReachGraphOptions) (*ReachGraph, error) {
	return buildReachGraph(ds.Contacts(), opts)
}

// BuildReachGraphFromContacts is BuildReachGraph for a pre-extracted
// contact network (avoids re-joining trajectories).
func BuildReachGraphFromContacts(cn *ContactNetwork, opts ReachGraphOptions) (*ReachGraph, error) {
	return buildReachGraph(cn, opts)
}

func buildReachGraph(cn *ContactNetwork, opts ReachGraphOptions) (*ReachGraph, error) {
	g := dn.Build(cn.net)
	ix, err := reachgraph.Build(g, reachgraph.Params{
		PartitionDepth: opts.PartitionDepth,
		Resolutions:    opts.Resolutions,
		PoolPages:      opts.PoolPages,
		Format:         opts.PageFormat,
	})
	if err != nil {
		return nil, err
	}
	return &ReachGraph{ix: ix}, nil
}

// Reachable answers q with BM-BFS.
func (g *ReachGraph) Reachable(q Query) (bool, error) { return g.ix.Reach(q) }

// ReachableStrategy answers q with an explicit traversal strategy.
func (g *ReachGraph) ReachableStrategy(q Query, s Strategy) (bool, error) {
	return g.ix.ReachStrategy(q, s)
}

// IOStats returns the accumulated disk traffic.
func (g *ReachGraph) IOStats() IOStats { return statsOf(g.ix.Counters()) }

// ResetStats zeroes the I/O counters and drops the buffer pool.
func (g *ReachGraph) ResetStats() {
	g.ix.ResetCounters()
	g.ix.DropCache()
}

// IndexBytes returns the on-disk size of the index.
func (g *ReachGraph) IndexBytes() int64 { return g.ix.Store().SizeBytes() }

// UncertainNetwork is a contact network whose contacts transmit with a
// probability (§7).
type UncertainNetwork struct {
	engine *uncertain.Engine
}

// Uncertain lifts the network into an uncertain one, assigning every
// contact the probability prob(c) (clamped to (0, 1]; non-positive values
// drop the contact).
func (cn *ContactNetwork) Uncertain(prob func(Contact) float64) (*UncertainNetwork, error) {
	e, err := uncertain.NewEngine(uncertain.FromNetwork(cn.net, prob))
	if err != nil {
		return nil, err
	}
	return &UncertainNetwork{engine: e}, nil
}

// UncertainUniform lifts the network with one fixed transmission
// probability per contact instant.
func (cn *ContactNetwork) UncertainUniform(p float64) (*UncertainNetwork, error) {
	return cn.Uncertain(func(Contact) float64 { return p })
}

// UncertainRandom lifts the network with i.i.d. uniform probabilities in
// [lo, hi], seeded for reproducibility.
func (cn *ContactNetwork) UncertainRandom(lo, hi float64, seed int64) (*UncertainNetwork, error) {
	rng := rand.New(rand.NewSource(seed))
	return cn.Uncertain(func(Contact) float64 { return lo + (hi-lo)*rng.Float64() })
}

// BestProb returns the maximum probability with which an item initiated by
// src at iv.Lo is held by dst by iv.Hi.
func (un *UncertainNetwork) BestProb(src, dst ObjectID, iv Interval) (float64, error) {
	return un.engine.BestProbDijkstra(src, dst, iv)
}

// Reachable reports whether dst is reachable from src during iv with
// probability at least minProb.
func (un *UncertainNetwork) Reachable(src, dst ObjectID, iv Interval, minProb float64) (bool, error) {
	return un.engine.Reachable(src, dst, iv, minProb)
}

// BestProbAll returns per-object maximum receipt probabilities.
func (un *UncertainNetwork) BestProbAll(src ObjectID, iv Interval) ([]float64, error) {
	return un.engine.BestProbAll(src, iv)
}

// ContactStream ingests a live position feed one instant at a time and
// maintains the contact network incrementally (§6.2.1.2) — the alternative
// to batch-extracting contacts from a complete trajectory archive.
// Snapshots can be taken at any point and used as an Open source (any
// graph-based backend) or fed to BuildReachGraphFromContacts while the
// stream keeps running. For serving queries continuously over the feed
// without per-snapshot rebuilds, use LiveEngine, which seals the stream
// into time-sliced index segments as it ingests.
type ContactStream struct {
	b          *contact.Builder
	j          *stjoin.Joiner
	numObjects int
}

// NewContactStream returns a stream for numObjects objects moving in env
// with contact threshold contactDist.
func NewContactStream(numObjects int, env Rect, contactDist float64) (*ContactStream, error) {
	if numObjects <= 0 {
		return nil, errors.New("streach: contact stream needs at least one object")
	}
	if contactDist <= 0 {
		return nil, errors.New("streach: contact threshold must be positive")
	}
	return &ContactStream{
		b:          contact.NewBuilder(numObjects),
		j:          stjoin.NewJoiner(env, contactDist),
		numObjects: numObjects,
	}, nil
}

// AddInstant ingests the next instant; positions[i] is object i's position.
func (cs *ContactStream) AddInstant(positions []Point) error {
	if len(positions) != cs.numObjects {
		return fmt.Errorf("streach: got %d positions, want %d", len(positions), cs.numObjects)
	}
	cs.b.AddPositions(cs.j, positions)
	return nil
}

// NumTicks returns the number of instants ingested so far.
func (cs *ContactStream) NumTicks() int { return cs.b.NumTicks() }

// Snapshot returns the contact network over the instants ingested so far;
// the stream remains usable.
func (cs *ContactStream) Snapshot() *ContactNetwork {
	return &ContactNetwork{net: cs.b.Network()}
}

// NonImmediate is a contact network under non-immediate semantics: items
// deposited in the environment survive for a lifetime (§7).
type NonImmediate struct {
	engine *nonimmediate.Engine
}

// ExtractNonImmediate joins ds against its replicated trajectories: an item
// deposited at instant t can be picked up within dT of the deposit position
// until t+lifetimeTicks.
func ExtractNonImmediate(ds *Dataset, lifetimeTicks int) (*NonImmediate, error) {
	cs := nonimmediate.Extract(ds.d, lifetimeTicks)
	e, err := nonimmediate.NewEngine(ds.NumObjects(), ds.NumTicks(), cs)
	if err != nil {
		return nil, err
	}
	return &NonImmediate{engine: e}, nil
}

// NonImmediateContacts extracts ds's non-immediate contacts with the given
// item lifetime (in ticks) and folds them into an undirected contact
// network that any registry backend can index. At lifetime 0 this is
// exactly Contacts(); for positive lifetimes the projection is a
// conservative over-approximation of the directed semantics (use
// ExtractNonImmediate for exact directed answers).
func (ds *Dataset) NonImmediateContacts(lifetimeTicks int) *ContactNetwork {
	cs := nonimmediate.Extract(ds.d, lifetimeTicks)
	return &ContactNetwork{net: nonimmediate.ProjectNetwork(ds.NumObjects(), ds.NumTicks(), cs)}
}

// Reachable answers q under non-immediate semantics.
func (ni *NonImmediate) Reachable(q Query) (bool, error) { return ni.engine.Reachable(q) }

// ReachableSet returns every object holding the item by the end of iv.
func (ni *NonImmediate) ReachableSet(src ObjectID, iv Interval) ([]ObjectID, error) {
	return ni.engine.ReachableSet(src, iv)
}

// InfectionTimes returns each object's earliest receipt instant (−1 for
// never).
func (ni *NonImmediate) InfectionTimes(src ObjectID, iv Interval) ([]Tick, error) {
	return ni.engine.InfectionTimes(src, iv)
}
