package streach_test

import (
	"sort"
	"testing"

	"streach"
)

// pipeline builds everything once for the integration tests.
type pipeline struct {
	ds     *streach.Dataset
	cn     *streach.ContactNetwork
	oracle *streach.Oracle
	grid   *streach.ReachGrid
	graph  *streach.ReachGraph
}

func buildPipeline(t testing.TB, ds *streach.Dataset) *pipeline {
	t.Helper()
	cn := ds.Contacts()
	grid, err := streach.BuildReachGrid(ds, streach.ReachGridOptions{})
	if err != nil {
		t.Fatalf("BuildReachGrid: %v", err)
	}
	graph, err := streach.BuildReachGraphFromContacts(cn, streach.ReachGraphOptions{})
	if err != nil {
		t.Fatalf("BuildReachGraph: %v", err)
	}
	return &pipeline{ds: ds, cn: cn, oracle: cn.Oracle(), grid: grid, graph: graph}
}

func (p *pipeline) workload(t testing.TB, count int, seed int64) []streach.Query {
	t.Helper()
	return streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: p.ds.NumObjects(),
		NumTicks:   p.ds.NumTicks(),
		Count:      count,
		MinLen:     10,
		MaxLen:     p.ds.NumTicks() / 2,
		Seed:       seed,
	})
}

// TestEndToEndRWP runs the full pipeline on a random-waypoint dataset: every
// engine and every traversal strategy must agree with ground truth.
func TestEndToEndRWP(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 60, NumTicks: 500, Seed: 3,
	})
	p := buildPipeline(t, ds)
	var pos int
	for _, q := range p.workload(t, 120, 17) {
		want := p.oracle.Reachable(q)
		if want {
			pos++
		}
		if got, err := p.grid.Reachable(q); err != nil || got != want {
			t.Fatalf("grid %v: got (%v, %v), want %v", q, got, err, want)
		}
		for _, s := range []streach.Strategy{streach.BMBFS, streach.BBFS, streach.EBFS, streach.EDFS} {
			if got, err := p.graph.ReachableStrategy(q, s); err != nil || got != want {
				t.Fatalf("graph %v %v: got (%v, %v), want %v", s, q, got, err, want)
			}
		}
	}
	if pos == 0 || pos == 120 {
		t.Fatalf("degenerate workload: %d/120 positive", pos)
	}
}

// TestEndToEndVehicles runs the pipeline on the road-network dataset.
func TestEndToEndVehicles(t *testing.T) {
	ds := streach.GenerateVehicles(streach.VNOptions{
		NumObjects: 50, NumTicks: 400, Seed: 5,
	})
	p := buildPipeline(t, ds)
	for _, q := range p.workload(t, 80, 19) {
		want := p.oracle.Reachable(q)
		if got, err := p.grid.Reachable(q); err != nil || got != want {
			t.Fatalf("grid %v: got (%v, %v), want %v", q, got, err, want)
		}
		if got, err := p.graph.Reachable(q); err != nil || got != want {
			t.Fatalf("graph %v: got (%v, %v), want %v", q, got, err, want)
		}
	}
}

// TestEndToEndTaxi runs the pipeline on the interpolated taxi-day dataset.
func TestEndToEndTaxi(t *testing.T) {
	ds := streach.GenerateTaxiDay(streach.TaxiOptions{
		NumObjects: 40, NumMinutes: 30, Seed: 7,
	})
	p := buildPipeline(t, ds)
	for _, q := range p.workload(t, 50, 23) {
		want := p.oracle.Reachable(q)
		if got, err := p.graph.Reachable(q); err != nil || got != want {
			t.Fatalf("graph %v: got (%v, %v), want %v", q, got, err, want)
		}
	}
}

// TestReachableSetsAgree cross-checks the batch primitive between the
// oracle and ReachGrid through the public API.
func TestReachableSetsAgree(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 50, NumTicks: 300, Seed: 9,
	})
	p := buildPipeline(t, ds)
	for src := streach.ObjectID(0); src < 8; src++ {
		iv := streach.NewInterval(streach.Tick(10*src), streach.Tick(10*src)+150)
		want := p.oracle.ReachableSet(src, iv)
		got, err := p.grid.ReachableSet(src, iv)
		if err != nil {
			t.Fatal(err)
		}
		sortIDs(want)
		sortIDs(got)
		if !equalIDs(got, want) {
			t.Fatalf("src %d: grid set %v, oracle set %v", src, got, want)
		}
	}
}

// TestUncertainConsistency checks the §7 probabilistic semantics against
// the deterministic special cases through the public API.
func TestUncertainConsistency(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 40, NumTicks: 250, Seed: 13,
	})
	cn := ds.Contacts()
	oracle := cn.Oracle()

	certain, err := cn.UncertainUniform(1)
	if err != nil {
		t.Fatal(err)
	}
	random, err := cn.UncertainRandom(0.3, 0.9, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: 40, NumTicks: 250, Count: 60, MinLen: 10, MaxLen: 150, Seed: 27,
	}) {
		want := oracle.Reachable(q)
		got, err := certain.Reachable(q.Src, q.Dst, q.Interval, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: certain %v, oracle %v", q, got, want)
		}
		// Under random probabilities, positive probability iff reachable.
		p, err := random.BestProb(q.Src, q.Dst, q.Interval)
		if err != nil {
			t.Fatal(err)
		}
		if (p > 0) != want && q.Src != q.Dst {
			t.Fatalf("%v: BestProb=%v but oracle=%v", q, p, want)
		}
	}
}

// TestNonImmediateExtension checks the lifetime-0 degenerate case and
// monotonicity through the public API.
func TestNonImmediateExtension(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 35, NumTicks: 200, Seed: 15,
	})
	oracle := ds.Contacts().Oracle()
	immediate, err := streach.ExtractNonImmediate(ds, 0)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := streach.ExtractNonImmediate(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: 35, NumTicks: 200, Count: 60, MinLen: 10, MaxLen: 120, Seed: 29,
	}) {
		want := oracle.Reachable(q)
		got, err := immediate.Reachable(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v: lifetime-0 %v, oracle %v", q, got, want)
		}
		wide, err := delayed.Reachable(q)
		if err != nil {
			t.Fatal(err)
		}
		if want && !wide {
			t.Fatalf("%v: reachable immediately but not with lifetime 5", q)
		}
	}
}

// TestIOStatsAccumulateAndReset exercises the stats plumbing.
func TestIOStatsAccumulateAndReset(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 30, NumTicks: 200, Seed: 21,
	})
	p := buildPipeline(t, ds)
	q := streach.Query{Src: 0, Dst: 7, Interval: streach.NewInterval(10, 150)}

	p.grid.ResetStats()
	if _, err := p.grid.Reachable(q); err != nil {
		t.Fatal(err)
	}
	if st := p.grid.IOStats(); st.RandomReads+st.SequentialReads == 0 {
		t.Error("grid query reported zero page reads")
	}
	p.grid.ResetStats()
	if st := p.grid.IOStats(); st.Normalized != 0 {
		t.Errorf("ResetStats left %.1f normalized IOs", st.Normalized)
	}

	p.graph.ResetStats()
	if _, err := p.graph.Reachable(q); err != nil {
		t.Fatal(err)
	}
	if st := p.graph.IOStats(); st.RandomReads+st.SequentialReads == 0 {
		t.Error("graph query reported zero page reads")
	}
	if p.grid.IndexBytes() == 0 || p.graph.IndexBytes() == 0 {
		t.Error("index sizes reported as zero")
	}
}

// TestDeterministicGeneration pins generator reproducibility.
func TestDeterministicGeneration(t *testing.T) {
	a := streach.GenerateRandomWaypoint(streach.RWPOptions{NumObjects: 20, NumTicks: 100, Seed: 42})
	b := streach.GenerateRandomWaypoint(streach.RWPOptions{NumObjects: 20, NumTicks: 100, Seed: 42})
	if a.Contacts().NumContacts() != b.Contacts().NumContacts() {
		t.Fatal("same seed produced different contact networks")
	}
	c := streach.GenerateRandomWaypoint(streach.RWPOptions{NumObjects: 20, NumTicks: 100, Seed: 43})
	if a.Contacts().NumContacts() == c.Contacts().NumContacts() &&
		a.SizeBytes() == c.SizeBytes() {
		pa := a.Position(0, 50)
		pc := c.Position(0, 50)
		if pa == pc {
			t.Fatal("different seeds produced identical trajectories")
		}
	}
}

func sortIDs(s []streach.ObjectID) {
	sort.Slice(s, func(i, k int) bool { return s[i] < s[k] })
}

func equalIDs(a, b []streach.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestContactStreamMatchesBatch feeds a dataset through the incremental
// stream and compares a mid-stream and a final snapshot against batch
// extraction.
func TestContactStreamMatchesBatch(t *testing.T) {
	ds := streach.GenerateRandomWaypoint(streach.RWPOptions{
		NumObjects: 30, NumTicks: 150, Seed: 33,
	})
	cs, err := streach.NewContactStream(ds.NumObjects(), ds.Env(), ds.ContactDist())
	if err != nil {
		t.Fatal(err)
	}
	positions := make([]streach.Point, ds.NumObjects())
	feed := func(lo, hi int) {
		for tk := lo; tk < hi; tk++ {
			for o := range positions {
				positions[o] = ds.Position(streach.ObjectID(o), streach.Tick(tk))
			}
			if err := cs.AddInstant(positions); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(0, 75)
	mid := cs.Snapshot()
	if mid.NumTicks() != 75 {
		t.Fatalf("mid snapshot ticks: %d", mid.NumTicks())
	}
	feed(75, ds.NumTicks())
	got := cs.Snapshot()
	want := ds.Contacts()
	if got.NumContacts() != want.NumContacts() {
		t.Fatalf("stream %d contacts, batch %d", got.NumContacts(), want.NumContacts())
	}
	// The streamed snapshot must answer queries identically.
	graph, err := streach.BuildReachGraphFromContacts(got, streach.ReachGraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := want.Oracle()
	for _, q := range streach.RandomQueries(streach.WorkloadOptions{
		NumObjects: 30, NumTicks: 150, Count: 50, MinLen: 10, MaxLen: 100, Seed: 35,
	}) {
		wantR := oracle.Reachable(q)
		gotR, err := graph.Reachable(q)
		if err != nil {
			t.Fatal(err)
		}
		if gotR != wantR {
			t.Fatalf("%v: stream-built graph %v, oracle %v", q, gotR, wantR)
		}
	}
	// Validation errors.
	if _, err := streach.NewContactStream(0, ds.Env(), 25); err == nil {
		t.Error("zero objects: want error")
	}
	if _, err := streach.NewContactStream(5, ds.Env(), 0); err == nil {
		t.Error("zero threshold: want error")
	}
	if err := cs.AddInstant(positions[:3]); err == nil {
		t.Error("short position slice: want error")
	}
}
