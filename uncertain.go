// The uncertain:* backend family: §7's probabilistic contact-network
// engines lifted into the registry. An "uncertain:<base>" backend wraps any
// registered contact-sourced base with a disk-resident contact store —
// time-bucketed blobs in the versioned contact codec (the v2 layout carries
// the per-contact weight/duration sidecar; v1 blobs decode forever with a
// zero sidecar) — and answers every temporal-semantics spec natively:
// filtered and hop-bounded profiles evaluate over the decoded, predicate-
// projected network, charging real blob reads to the query's accountant,
// while plain boolean queries delegate to the base index untouched.
//
// For probabilistic point queries the facade's profile evaluation reports
// Prob = p^minHops under the τ-folded budget — exactly the maximum path
// probability the paper's −log p Dijkstra computes for a uniform per-
// contact p (minimal cost ⇔ minimal transfers). The Dijkstra itself
// (internal/uncertain) is the core's cross-validation surface: probPath
// runs it over the same decoded store, and tests assert the two
// formulations agree query-by-query; the bench harness additionally gates
// the seeded Monte-Carlo fallback against it on small presets.

package streach

import (
	"context"
	"fmt"
	"strings"

	"streach/internal/contact"
	"streach/internal/pagefile"
	"streach/internal/queries"
	"streach/internal/uncertain"
)

// uncertainBucketTicks is the validity-start width of one contact bucket.
// Buckets are skipped per query via their recorded [lo, maxHi] coverage, so
// the width only trades blob count against decode granularity.
const uncertainBucketTicks = 64

// uncertainBucket locates one encoded contact blob: ref addresses the blob
// in the store, lo is the smallest Validity.Lo of its contacts and maxHi
// the largest Validity.Hi — a query interval disjoint from [lo, maxHi]
// skips the bucket without reading it.
type uncertainBucket struct {
	ref   pagefile.BlobRef
	lo    Tick
	maxHi Tick
}

// uncertainCore wraps a base engineCore with the bucketed contact store.
type uncertainCore struct {
	base       engineCore
	store      *pagefile.Store
	buckets    []uncertainBucket
	numObjects int
	numTicks   int
}

func buildUncertainCore(base string, src Source, opts Options) (engineCore, error) {
	baseSpec, ok := registry[base]
	if !ok {
		return nil, fmt.Errorf("%w %q (uncertain base)", ErrUnknownBackend, base)
	}
	if baseSpec.info.NeedsTrajectories && src.sourceDataset() == nil {
		return nil, fmt.Errorf("open %q: %w", base, ErrNeedsTrajectories)
	}
	bc, err := baseSpec.open(src, opts)
	if err != nil {
		return nil, err
	}
	net := src.sourceContacts().net
	c := &uncertainCore{
		base:       bc,
		store:      pagefile.NewStoreWith(opts.Pool, opts.PoolPages),
		numObjects: net.NumObjects,
		numTicks:   net.NumTicks,
	}
	// Contacts are sorted by Validity.Lo, so bucketing by start tick is one
	// linear pass and every bucket's blob stays codec-normalized.
	enc := pagefile.NewEncoder(1 << 12)
	flush := func(cs []contact.Contact) {
		if len(cs) == 0 {
			return
		}
		lo, maxHi := cs[0].Validity.Lo, cs[0].Validity.Hi
		for _, cc := range cs[1:] {
			if cc.Validity.Hi > maxHi {
				maxHi = cc.Validity.Hi
			}
		}
		enc.Reset()
		contact.AppendContactsBlob(enc, cs, opts.PageFormat)
		c.buckets = append(c.buckets, uncertainBucket{ref: c.store.AppendBlob(enc.Bytes()), lo: lo, maxHi: maxHi})
	}
	var group []contact.Contact
	groupBucket := int64(-1)
	for _, cc := range net.Contacts {
		b := int64(cc.Validity.Lo) / uncertainBucketTicks
		if b != groupBucket && len(group) > 0 {
			flush(group)
			group = group[:0]
		}
		groupBucket = b
		group = append(group, cc)
	}
	flush(group)
	return c, nil
}

// loadNetwork decodes the buckets overlapping iv, keeps the contacts that
// overlap iv and pass f, and assembles them into a network over the full
// object/tick domain. Blob reads are charged to acct.
func (c *uncertainCore) loadNetwork(iv Interval, f queries.Filter, acct *pagefile.Stats) (*contact.Network, error) {
	var kept []contact.Contact
	for _, b := range c.buckets {
		if b.maxHi < iv.Lo || b.lo > iv.Hi {
			continue
		}
		data, err := c.store.ReadBlob(b.ref, acct)
		if err != nil {
			return nil, err
		}
		cs, err := contact.DecodeContactsBlob(pagefile.NewDecoder(data))
		if err != nil {
			return nil, err
		}
		for _, cc := range cs {
			if cc.Validity.Overlaps(iv) && (!f.Active() || f.Match(cc)) {
				kept = append(kept, cc)
			}
		}
	}
	return contact.FromContacts(c.numObjects, c.numTicks, kept), nil
}

// --- engineCore: plain boolean queries ride the base index ---

func (c *uncertainCore) reach(ctx context.Context, q Query, acct *pagefile.Stats) (bool, int, error) {
	return c.base.reach(ctx, q, acct)
}

func (c *uncertainCore) reachSet(ctx context.Context, src ObjectID, iv Interval, acct *pagefile.Stats) ([]ObjectID, error) {
	return c.base.reachSet(ctx, src, iv, acct)
}

func (c *uncertainCore) ioTotals() pagefile.Stats {
	sum := c.base.ioTotals()
	sum.Add(c.store.Counters())
	return sum
}

func (c *uncertainCore) resetIO() {
	c.base.resetIO()
	c.store.ResetCounters()
}

func (c *uncertainCore) indexBytes() int64 {
	return c.base.indexBytes() + c.store.SizeBytes()
}

func (c *uncertainCore) dropCache() {
	c.base.dropCache()
	c.store.DropCache()
}

// --- semCore: every spec is native over the decoded store ---

func (c *uncertainCore) semSupports(semSpec) bool { return true }

func (c *uncertainCore) semProfile(_ context.Context, dst []queries.ProfileEntry, seeds []queries.SeedState, iv Interval, spec semSpec, earlyDst ObjectID, acct *pagefile.Stats) ([]queries.ProfileEntry, int, error) {
	net, err := c.loadNetwork(iv, spec.filter, acct)
	if err != nil {
		return dst, 0, err
	}
	entries, n := queries.NewOracle(net).ProfileFrom(seeds, iv, spec.budget, earlyDst)
	return append(dst, entries...), n, nil
}

// probPath runs the paper's exact −log p Dijkstra (internal/uncertain)
// over the decoded store for one probabilistic point query: the uniform
// per-contact probability and the query's contact predicate thread through
// PathOpts, the τ-folded budget bounds the transfer count. Tests and the
// bench harness use it to cross-validate the facade's p^minHops answers
// and the Monte-Carlo estimator against the shortest-path formulation.
func (c *uncertainCore) probPath(q Query, acct *pagefile.Stats) (uncertain.PathResult, error) {
	sem := q.Semantics
	iv := clampDomain(q.Interval, c.numTicks)
	if iv.Len() == 0 {
		return uncertain.PathResult{}, nil
	}
	net, err := c.loadNetwork(iv, queries.Filter{}, acct)
	if err != nil {
		return uncertain.PathResult{}, err
	}
	p := sem.Prob
	if p <= 0 || p > 1 {
		p = 1
	}
	un := uncertain.FromNetwork(net, func(contact.Contact) float64 { return p })
	if len(un.Contacts) == 0 {
		if q.Src == q.Dst {
			return uncertain.PathResult{Prob: 1, Arrival: iv.Lo, OK: true}, nil
		}
		return uncertain.PathResult{}, nil
	}
	eng, err := uncertain.NewEngine(un)
	if err != nil {
		return uncertain.PathResult{}, err
	}
	popts := uncertain.PathOpts{Prob: p}
	if f := sem.Filter(); f.Active() {
		popts.Filter = func(uc uncertain.Contact) bool { return f.Match(uc.Deterministic()) }
	}
	if b := sem.EffectiveBudget(); b != queries.UnboundedHops {
		if b <= 0 {
			// A zero budget admits no transfer at all; PathOpts.MaxHops ≤ 0
			// means unbounded, so answer the degenerate case here.
			if q.Src == q.Dst {
				return uncertain.PathResult{Prob: 1, Arrival: iv.Lo, OK: true}, nil
			}
			return uncertain.PathResult{}, nil
		}
		popts.MaxHops = b
	}
	return eng.BestProbPath(q.Src, q.Dst, iv, popts)
}

// --- registry wiring ---

// uncertainName is the canonical "uncertain:<base>" spelling.
func uncertainName(base string) string { return "uncertain:" + base }

// parseUncertainName splits "uncertain:<base>"; ok is false for anything
// else (including nested uncertain bases).
func parseUncertainName(name string) (base string, ok bool) {
	base, found := strings.CutPrefix(name, "uncertain:")
	if !found || base == "" || strings.HasPrefix(base, "uncertain:") {
		return "", false
	}
	return base, true
}

// uncertainSpec synthesizes the registry entry of an uncertain backend
// name, resolving the base against the static registry — any registered
// base composes dynamically, not just the pre-registered points.
func uncertainSpec(name string) (backendSpec, bool) {
	base, ok := parseUncertainName(name)
	if !ok {
		return backendSpec{}, false
	}
	base = strings.ToLower(strings.TrimSpace(base))
	if alias, ok := aliases[base]; ok {
		base = alias
	}
	baseSpec, ok := registry[base]
	if !ok {
		return backendSpec{}, false
	}
	return backendSpec{
		info: BackendInfo{
			Name:        uncertainName(base),
			Description: fmt.Sprintf("uncertain contact store over %s: filtered + probabilistic queries native (§7)", base),
			// Plain boolean queries delegate to the base index, so the
			// wrapper's disk residency is the base's; the contact store
			// additionally charges blob reads on semantic queries.
			DiskResident:      baseSpec.info.DiskResident,
			NeedsTrajectories: baseSpec.info.NeedsTrajectories,
		},
		open: func(src Source, opts Options) (engineCore, error) {
			return buildUncertainCore(base, src, opts)
		},
	}, true
}

// uncertainPoints are the pre-registered uncertain configurations: the
// ground-truth base and the flagship disk index. Every other
// "uncertain:<base>" combination resolves dynamically through lookupSpec.
var uncertainPoints = []string{"oracle", "reachgraph"}

func init() {
	for _, base := range uncertainPoints {
		spec, ok := uncertainSpec(uncertainName(base))
		if !ok {
			panic("streach: unresolvable uncertain point " + base)
		}
		registry[spec.info.Name] = spec
	}
	aliases["uncertain"] = uncertainName("oracle")
}
